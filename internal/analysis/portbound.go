package analysis

import (
	"go/ast"
	"go/types"
)

// PortBound flags call sites that discard a bounded port's rejection result.
// rtm.BoundedPort.Send reports refusal through its bool and Call through its
// error; code that drops either treats a turned-away message as delivered,
// which is exactly the silent-loss failure the bounded request queue exists
// to prevent — overload must surface to the caller, not vanish.
var PortBound = NewPortBound("internal/rtm")

// NewPortBound builds a portbound analyzer guarding methods of a type named
// BoundedPort declared in a package whose import path equals or ends with
// one of the given suffixes. The default instance guards internal/rtm; tests
// build instances pointed at fixture packages.
func NewPortBound(pkgSuffixes ...string) *Analyzer {
	match := suffixScope(pkgSuffixes...)
	a := &Analyzer{
		Name: "portbound",
		Doc: "forbid discarding a bounded port's rejection result (Send's bool, Call's error); " +
			"a dropped rejection turns overload into silent message loss",
		Scope: nil, // callers live in many packages; the callee check scopes it
	}
	a.Run = func(pass *Pass) error { return runPortBound(pass, match) }
	return a
}

func runPortBound(pass *Pass, guarded func(string) bool) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedRejection(pass, guarded, n.X, "discarded")
			case *ast.DeferStmt:
				checkDroppedRejection(pass, guarded, n.Call, "discarded by defer")
			case *ast.GoStmt:
				checkDroppedRejection(pass, guarded, n.Call, "discarded by go")
			case *ast.AssignStmt:
				checkBlankRejection(pass, guarded, n)
			}
			return true
		})
	}
	return nil
}

// boundedPortMethod resolves a call to a method of a guarded BoundedPort and
// returns the index of its rejection result, or nil / -1.
func boundedPortMethod(info *types.Info, guarded func(string) bool, call *ast.CallExpr) (*types.Func, int) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !guarded(fn.Pkg().Path()) {
		return nil, -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, -1
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "BoundedPort" {
		return nil, -1
	}
	return fn, rejectionResultIndex(sig)
}

// rejectionResultIndex is the error result if the method has one, otherwise
// its last bool result (Send's accepted flag), otherwise -1.
func rejectionResultIndex(sig *types.Signature) int {
	res := sig.Results()
	idx := -1
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return i
		}
		if b, ok := res.At(i).Type().(*types.Basic); ok && b.Kind() == types.Bool {
			idx = i
		}
	}
	return idx
}

// checkDroppedRejection reports a guarded call used as a bare statement.
func checkDroppedRejection(pass *Pass, guarded func(string) bool, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, idx := boundedPortMethod(pass.TypesInfo, guarded, call)
	if fn == nil || idx < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"rejection result of %s.%s %s; a bounded port's refusal must be handled, not dropped",
		fn.Pkg().Name(), qualifiedName(fn), how)
}

// checkBlankRejection reports guarded calls whose rejection result lands in
// the blank identifier, covering `_ = p.Send(m)` and `r, _ := p.Call(t, m)`.
func checkBlankRejection(pass *Pass, guarded func(string) bool, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			fn, idx := boundedPortMethod(pass.TypesInfo, guarded, call)
			if fn == nil || idx < 0 {
				return
			}
			if len(as.Lhs) > idx && isBlank(as.Lhs[idx]) {
				pass.Reportf(as.Lhs[idx].Pos(),
					"rejection result of %s.%s assigned to _; a bounded port's refusal must be handled, not dropped",
					fn.Pkg().Name(), qualifiedName(fn))
			}
			return
		}
	}
	// Parallel assignment: match each RHS call to its LHS.
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBlank(as.Lhs[i]) {
				continue
			}
			fn, idx := boundedPortMethod(pass.TypesInfo, guarded, call)
			if fn == nil || idx != 0 {
				continue
			}
			pass.Reportf(as.Lhs[i].Pos(),
				"rejection result of %s.%s assigned to _; a bounded port's refusal must be handled, not dropped",
				fn.Pkg().Name(), qualifiedName(fn))
		}
	}
}
