package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a conservative, module-wide static call graph over every
// package of a Suite, built once per suite and shared by the
// interprocedural analyzers. Nodes are function bodies (declared functions,
// methods, and function literals); an edge exists wherever a body could
// invoke another: direct calls, method-value references (eng.After(d,
// k.burstEnd) creates k → burstEnd), and function literals defined inside a
// body (assumed invocable). Interface dispatch is not followed — callers
// needing soundness across an interface boundary annotate the concrete
// entry point instead.
//
// Two root sets drive the analyzers:
//
//   - hot roots: callbacks handed to rtm.Kernel.NewPeriodicThread (the
//     scheduler event loop) plus functions annotated //crasvet:hotpath.
//     Everything reachable from them is the per-cycle path hotalloc guards.
//   - thread roots: the hot roots plus every body handed to
//     rtm.Kernel.NewThread and functions annotated //crasvet:thread — the
//     server-side execution contexts from which goroconfine permits
//     touching confined state.
type CallGraph struct {
	fset  *token.FileSet
	edges map[string]map[string]bool

	annotated map[string]map[string]bool // directive name → node keys

	hotRoots    map[string]bool
	threadRoots map[string]bool

	hotReach    map[string]bool
	threadReach map[string]bool
}

// Directive names the call graph and analyzers recognize (beyond
// crasvet:allow, which analysis.go handles):
//
//	//crasvet:hotpath  — function is on the per-cycle path (hotalloc root)
//	//crasvet:thread   — function is a server thread entry (goroconfine root)
//	//crasvet:snapshot — documented cross-thread read path (goroconfine)
//	//crasvet:init     — pre-concurrency construction path (goroconfine)
const (
	dirHotpath  = "hotpath"
	dirThread   = "thread"
	dirSnapshot = "snapshot"
	dirInit     = "init"
	dirConfined = "confined"
)

// commentHasDirective reports whether the comment group carries
// //crasvet:<name>, optionally followed by free text.
func commentHasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	want := "//crasvet:" + name
	for _, c := range cg.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") || strings.HasPrefix(c.Text, want+"\t") {
			return true
		}
	}
	return false
}

// isRTMPkg reports whether the import path is the RT-Mach kernel layer (or
// a fixture standing in for it): "rtm" or any path ending in "/rtm".
func isRTMPkg(path string) bool {
	return path == "rtm" || strings.HasSuffix(path, "/rtm")
}

// funcKey returns the graph node key for a resolved function or method.
func (g *CallGraph) funcKey(fn *types.Func) string {
	fn = fn.Origin()
	if key, ok := objectKey(fn); ok {
		return key
	}
	return "func@" + g.fset.Position(fn.Pos()).String()
}

// litKey returns the graph node key for a function literal.
func (g *CallGraph) litKey(lit *ast.FuncLit) string {
	return "lit@" + g.fset.Position(lit.Pos()).String()
}

// DeclKey returns the node key for a declared function, resolving through
// the package's type information.
func (g *CallGraph) DeclKey(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return g.funcKey(fn)
	}
	return "decl@" + g.fset.Position(fd.Pos()).String()
}

// LitKey is litKey, exported for analyzers tracking enclosing literals.
func (g *CallGraph) LitKey(lit *ast.FuncLit) string { return g.litKey(lit) }

// HotPath reports whether the function node is on the per-cycle path:
// reachable from the scheduler event loop or a //crasvet:hotpath root.
func (g *CallGraph) HotPath(key string) bool { return g.hotReach[key] }

// ThreadReachable reports whether the function node is reachable from any
// server thread entry point.
func (g *CallGraph) ThreadReachable(key string) bool { return g.threadReach[key] }

// Annotated reports whether the node carries the named //crasvet: directive.
func (g *CallGraph) Annotated(dir, key string) bool { return g.annotated[dir][key] }

func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		fset:        fset,
		edges:       map[string]map[string]bool{},
		annotated:   map[string]map[string]bool{},
		hotRoots:    map[string]bool{},
		threadRoots: map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := g.DeclKey(pkg.Info, fd)
				for _, dir := range []string{dirHotpath, dirThread, dirSnapshot, dirInit} {
					if commentHasDirective(fd.Doc, dir) {
						g.annotate(dir, key)
					}
				}
				g.walkBody(pkg.Info, key, fd.Body)
			}
		}
	}
	for dir, roots := range map[string]map[string]bool{dirHotpath: g.hotRoots, dirThread: g.threadRoots} {
		for key := range g.annotated[dir] {
			roots[key] = true
		}
	}
	// Hot roots are thread roots too: the periodic loop is a thread.
	for key := range g.hotRoots {
		g.threadRoots[key] = true
	}
	g.hotReach = g.reach(g.hotRoots)
	g.threadReach = g.reach(g.threadRoots)
	return g
}

func (g *CallGraph) annotate(dir, key string) {
	set := g.annotated[dir]
	if set == nil {
		set = map[string]bool{}
		g.annotated[dir] = set
	}
	set[key] = true
}

func (g *CallGraph) addEdge(from, to string) {
	set := g.edges[from]
	if set == nil {
		set = map[string]bool{}
		g.edges[from] = set
	}
	set[to] = true
}

// walkBody records edges and roots for one function body, recursing into
// literals under their own node keys.
func (g *CallGraph) walkBody(info *types.Info, cur string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lk := g.litKey(n)
			g.addEdge(cur, lk) // defined here ⇒ may be invoked from here
			g.walkBody(info, lk, n.Body)
			return false
		case *ast.CallExpr:
			g.noteThreadSpawn(info, n)
		case *ast.Ident:
			if fn, ok := info.Uses[n].(*types.Func); ok {
				g.addEdge(cur, g.funcKey(fn))
			}
		}
		return true
	})
}

// noteThreadSpawn registers the callback arguments of
// rtm.Kernel.NewThread / NewPeriodicThread as graph roots.
func (g *CallGraph) noteThreadSpawn(info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !isRTMPkg(fn.Pkg().Path()) {
		return
	}
	var roots map[string]bool
	switch fn.Name() {
	case "NewPeriodicThread":
		roots = g.hotRoots
	case "NewThread":
		roots = g.threadRoots
	default:
		return
	}
	for _, arg := range call.Args {
		switch arg := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			roots[g.litKey(arg)] = true
		case *ast.Ident, *ast.SelectorExpr:
			if cb := usedFunc(info, arg); cb != nil {
				roots[g.funcKey(cb)] = true
			}
		}
	}
}

// reach computes the transitive closure of the edge relation from roots.
func (g *CallGraph) reach(roots map[string]bool) map[string]bool {
	seen := map[string]bool{}
	var frontier []string
	for key := range roots {
		seen[key] = true
		frontier = append(frontier, key)
	}
	sort.Strings(frontier) // determinism of any future iteration order
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for next := range g.edges[cur] {
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	return seen
}
