package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go tool, parses the matched
// packages from source, and type-checks them against compiler export data
// from the build cache — no network, no third-party modules. dir is the
// directory to resolve patterns from (the module root, typically).
//
// Test files are not loaded: the invariants guard simulation code, and
// tests legitimately use goroutines and wall-clock timeouts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path → export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF { //crasvet:allow errcmp -- Decode returns bare io.EOF at a clean stream end; == is the documented idiom
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: t.ImportPath, Dir: t.Dir, Fset: fset}
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Types, pkg.Info = typeCheck(fset, t.ImportPath, pkg.Files, imp, &pkg.TypeErrors)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that reads gc export data files
// from the given import-path → file map (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info populated with the maps the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, errs *[]error) (*types.Package, *types.Info) {
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { *errs = append(*errs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info) // errors collected via conf.Error
	return pkg, info
}
