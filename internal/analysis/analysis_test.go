package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSimClock(t *testing.T) {
	analysistest.Run(t, "testdata/src/simclock", analysis.SimClock)
}

func TestSimClockScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core": true,
		"repro/internal/expt": true,
		"repro/internal/rtm":  true,
		"repro/internal/sim":  false, // the engine owns the clock
		"repro/internal/lab":  false,
		"repro":               false,
		"repro/cmd/crasbench": false,
	} {
		if got := analysis.SimClock.Scope(path); got != want {
			t.Errorf("SimClock.Scope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestRNGSource(t *testing.T) {
	analysistest.Run(t, "testdata/src/rngsource", analysis.RNGSource)
}

func TestRNGSourceExemptsSimRNG(t *testing.T) {
	// The same math/rand import is sanctioned when it lives in a file named
	// rng.go inside a package path ending in internal/sim.
	analysistest.RunAs(t, "testdata/src/rngexempt", "repro/internal/sim", analysis.RNGSource)
}

func TestRNGSourceFlagsRNGFileOutsideSim(t *testing.T) {
	// The same code as the rngexempt fixture — a file named rng.go importing
	// math/rand — is flagged when its package path does not end in
	// internal/sim: the file name alone buys nothing.
	analysistest.Run(t, "testdata/src/rngflagged", analysis.RNGSource)
}

func TestEventLoop(t *testing.T) {
	analysistest.Run(t, "testdata/src/eventloop", analysis.EventLoop)
}

func TestEventLoopScope(t *testing.T) {
	if analysis.EventLoop.Scope("repro/internal/sim") {
		t.Error("eventloop must not run on the engine package itself")
	}
	if !analysis.EventLoop.Scope("repro/internal/core") {
		t.Error("eventloop must run on internal/core")
	}
}

func TestIOErrCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/ioerrcheck", analysis.NewIOErrCheck("ioerrcheck/fakedisk"))
}

func TestPortBound(t *testing.T) {
	analysistest.Run(t, "testdata/src/portbound", analysis.NewPortBound("portbound/fakertm"))
}

func TestGoroConfine(t *testing.T) {
	analysistest.RunSuite(t, "testdata/src/goroconfine", analysis.GoroConfine)
}

// TestGoroConfineCrossPackageFacts proves a ConfinedFact exported while
// gathering a helper package is honored when analyzing an importer that
// never sees the annotation text.
func TestGoroConfineCrossPackageFacts(t *testing.T) {
	analysistest.RunSuite(t, "testdata/src/confinedx", analysis.GoroConfine)
}

func TestHotAlloc(t *testing.T) {
	analysistest.RunSuite(t, "testdata/src/hotalloc", analysis.HotAlloc)
}

// TestErrCmp also covers module-wide fact flow against import order: the
// store helper package's own comparison is flagged because the main
// fixture package (its importer) wraps store's errors.
func TestErrCmp(t *testing.T) {
	analysistest.RunSuite(t, "testdata/src/errcmp", analysis.ErrCmp)
}

// TestSuiteCleanOnOwnPackage is an integration test of the loader and the
// full suite: the analysis package itself must load, type-check without
// errors, and come back clean.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/analysis")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	for _, a := range analysis.All() {
		if a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		diags, err := pkg.Run(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
