// Package analysis is crasvet's static-analysis framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis built on the
// standard library's go/ast, go/types and go/importer.
//
// The paper's central claim is predictability: the request scheduler runs
// every interval T, the admission formulas bound disk time, and the
// time-driven buffer discards by logical clock. Our reproduction keeps that
// predictability by forcing all timing through the deterministic
// internal/sim engine — no wall clock, one seeded RNG. The analyzers in
// this package turn those tribal rules into machine-checked invariants:
//
//   - simclock:   no time.Now/Sleep/Since/... in simulation packages
//   - rngsource:  math/rand and crypto/rand only inside internal/sim/rng.go
//   - eventloop:  no goroutines, channel ops, sync primitives or unbounded
//     loops inside sim event callbacks and process bodies
//   - ioerrcheck: no discarded error returns from internal/disk and
//     internal/ufs calls
//
// A diagnostic can be suppressed with a directive comment on the same line
// or the line directly above:
//
//	//crasvet:allow <analyzer>[,<analyzer>...] [-- reason]
//
// A bare "//crasvet:allow" suppresses every analyzer for that line. Use the
// reason field; an allow without one is a smell.
//
// The framework loads type information offline from the build cache
// (go list -export), so it needs no network access and no third-party
// modules. Run it via cmd/crasvet.
package analysis
