package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventLoop guards the cooperative scheduler. Event callbacks (literals
// passed to Engine.At/After/Spawn and friends) and process bodies (functions
// taking a *sim.Proc or *rtm.Thread) run interleaved with the engine: at
// most one runs at a time, and control moves only at explicit yield points.
// A goroutine spawn, channel operation or sync primitive inside one either
// deadlocks the park/resume handshake or races the virtual clock against the
// host scheduler — the Go analogue of breaking the paper's five-thread
// priority discipline. An unbounded loop without a yield or exit freezes
// virtual time entirely.
var EventLoop = &Analyzer{
	Name: "eventloop",
	Doc: "forbid goroutine spawns, channel operations, sync primitives and " +
		"unbounded loops inside sim event callbacks and process bodies",
	Scope: func(pkgPath string) bool {
		// The engine itself implements the handshake and is exempt.
		return !isEnginePkg(pkgPath)
	},
	Run: runEventLoop,
}

func isEnginePkg(path string) bool {
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// isSchedulerPkg reports whether the import path is one of the cooperative
// scheduling layers (the sim engine or the RT-Mach thread layer on top).
func isSchedulerPkg(path string) bool {
	for _, s := range []string{"internal/sim", "internal/rtm"} {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runEventLoop(pass *Pass) error {
	v := &eventLoopVisitor{pass: pass, reported: map[token.Pos]bool{}}

	// Index this package's function declarations so callbacks passed as
	// method values (e.g. eng.After(d, k.burstEnd)) resolve to their bodies.
	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					declOf[fn] = fd
				}
			}
		}
	}

	// Mark callback functions: any function value handed to the scheduler
	// packages, plus any function with a scheduler-context parameter.
	markedLits := map[*ast.FuncLit]bool{} // value: runs as process body
	markedDecls := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := calleeFunc(pass.TypesInfo, n)
				if callee == nil || callee.Pkg() == nil || !isSchedulerPkg(callee.Pkg().Path()) {
					return true
				}
				for _, arg := range n.Args {
					switch arg := ast.Unparen(arg).(type) {
					case *ast.FuncLit:
						markedLits[arg] = markedLits[arg] || funcLitTakesProc(pass.TypesInfo, arg)
					case *ast.Ident, *ast.SelectorExpr:
						if fn := usedFunc(pass.TypesInfo, arg); fn != nil {
							if fd, ok := declOf[fn]; ok {
								markedDecls[fd] = markedDecls[fd] || declTakesProc(pass.TypesInfo, fd)
							}
						}
					}
				}
			case *ast.FuncLit:
				if funcLitTakesProc(pass.TypesInfo, n) {
					markedLits[n] = true
				}
			case *ast.FuncDecl:
				if n.Body != nil && declTakesProc(pass.TypesInfo, n) {
					markedDecls[n] = true
				}
			}
			return true
		})
	}

	v.marked = markedLits
	for lit, isProc := range markedLits {
		v.check(lit.Body, "sim callback", isProc)
	}
	for fd, isProc := range markedDecls {
		what := "sim callback " + fd.Name.Name
		if isProc {
			what = "process body " + fd.Name.Name
		}
		v.check(fd.Body, what, isProc)
	}
	return nil
}

type eventLoopVisitor struct {
	pass     *Pass
	marked   map[*ast.FuncLit]bool
	reported map[token.Pos]bool
}

func (v *eventLoopVisitor) reportf(pos token.Pos, format string, args ...any) {
	if v.reported[pos] {
		return
	}
	v.reported[pos] = true
	v.pass.Reportf(pos, format, args...)
}

// check walks one callback body. isProc indicates a process body, which may
// loop forever as long as each iteration yields to the scheduler.
func (v *eventLoopVisitor) check(body *ast.BlockStmt, what string, isProc bool) {
	info := v.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal that is itself a scheduler callback is
			// checked separately under its own context.
			if _, ok := v.marked[n]; ok {
				return false
			}
			return true
		case *ast.GoStmt:
			v.reportf(n.Pos(),
				"goroutine spawn inside %s: the engine interleaves work deterministically; use Engine.Spawn or schedule an event instead", what)
		case *ast.SendStmt:
			v.reportf(n.Pos(),
				"channel send inside %s would block the engine's park/resume handshake; communicate through sim.Queue or scheduled events", what)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				v.reportf(n.Pos(),
					"channel receive inside %s would block the engine's park/resume handshake; communicate through sim.Queue or scheduled events", what)
			}
		case *ast.SelectStmt:
			v.reportf(n.Pos(),
				"select inside %s hands scheduling to the Go runtime; the engine must stay the only scheduler", what)
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					v.reportf(n.Pos(),
						"range over channel inside %s would block the engine's park/resume handshake", what)
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				v.reportf(n.Pos(),
					"sync.%s inside %s: real locks stall virtual time; the engine already serializes callbacks", qualifiedName(fn), what)
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n) && !(isProc && loopYields(info, n)) {
				v.reportf(n.Pos(),
					"unbounded for loop inside %s never returns control to the engine; add an exit condition or a yield (Sleep/Block/Queue.Get)", what)
			}
		}
		return true
	})
}

// qualifiedName renders Mutex.Lock style names for methods and plain names
// for functions.
func qualifiedName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for calls through function values and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return usedFunc(info, ast.Unparen(call.Fun))
}

func usedFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isSchedulerHandle reports whether t is a pointer to a type declared in a
// scheduler package (*sim.Proc, *rtm.Thread, ...).
func isSchedulerHandle(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return isSchedulerPkg(named.Obj().Pkg().Path())
}

func funcLitTakesProc(info *types.Info, lit *ast.FuncLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	return signatureTakesProc(sig)
}

func declTakesProc(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return signatureTakesProc(sig)
}

func signatureTakesProc(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isSchedulerHandle(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// loopHasExit reports whether a condition-less for loop can terminate: an
// unlabeled break at its own level, any labeled break, a return, a goto, or
// a panic. Nested function literals are opaque.
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		if exit || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				exit = true
			case token.BREAK:
				if breakable || n.Label != nil {
					exit = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// An unlabeled break inside binds to this inner statement.
			ast.Inspect(n, func(inner ast.Node) bool {
				if inner == n {
					return true
				}
				walk(inner, false)
				return false
			})
			return
		}
		ast.Inspect(n, func(inner ast.Node) bool {
			if inner == n {
				return true
			}
			walk(inner, breakable)
			return false
		})
	}
	for _, stmt := range loop.Body.List {
		walk(stmt, true)
	}
	return exit
}

// loopYields reports whether the loop body touches a scheduler handle — a
// *sim.Proc or *rtm.Thread value — which is how process bodies reach their
// yield points (Sleep, Block, Queue.Get, ReadSync, ...).
func loopYields(info *types.Info, loop *ast.ForStmt) bool {
	yields := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if yields {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && isSchedulerHandle(obj.Type()) {
			yields = true
		}
		return true
	})
	return yields
}
