package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// ZipfPicker draws movie ranks from a Zipf popularity law: rank r (from 0)
// is chosen with probability proportional to 1/(r+1)^alpha. Alpha 0 is the
// uniform law; video-on-demand catalogs are usually measured near 0.7-1.1,
// which is what makes interval caching pay — most viewers pile onto a few
// titles and arrive while those titles are already playing.
type ZipfPicker struct {
	cum []float64 // cumulative, normalized to cum[len-1] == 1
}

// NewZipfPicker builds the law over n ranks.
func NewZipfPicker(n int, alpha float64) *ZipfPicker {
	z := &ZipfPicker{cum: make([]float64, n)}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), alpha)
		z.cum[r] = sum
	}
	for r := range z.cum {
		z.cum[r] /= sum
	}
	return z
}

// Pick maps a uniform draw in [0,1) to a rank.
func (z *ZipfPicker) Pick(u float64) int {
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ViewerOutcome is one Zipf viewer's fate: which movie it asked for,
// whether admission let it in, whether it rode the interval cache, and its
// delivery record (zero-valued when the viewer was rejected).
type ViewerOutcome struct {
	Movie       int
	At          sim.Time // scripted arrival time
	Admitted    bool
	CacheBacked bool // at open; may drop to disk later (see Stats)
	Multicast   bool // opened as a multicast fan-out member
	PrefixStart bool // first frames backfilled from the pinned prefix
	Stats       PlayerStats
}

// ZipfViewerConfig shapes a multi-client arrival pattern.
type ZipfViewerConfig struct {
	Clients       int
	Alpha         float64
	ArrivalSpread sim.Time // viewer arrivals uniform in [0, spread)
	Player        PlayerConfig
}

// LaunchZipfViewers spawns a population of viewers whose movie choices
// follow Zipf(alpha) and whose arrivals are uniform over the spread. Every
// random draw happens up front, before any thread runs, so the workload is
// a fixed script: identical (rng, config) inputs replay the identical
// arrival sequence no matter how the server interleaves them. Outcomes are
// filled in as viewers finish; callers poll Stats.Done.
func LaunchZipfViewers(k *rtm.Kernel, srv *core.Server, infos []*media.StreamInfo,
	paths []string, rng *sim.RNG, cfg ZipfViewerConfig) []*ViewerOutcome {
	picker := NewZipfPicker(len(paths), cfg.Alpha)
	outs := make([]*ViewerOutcome, cfg.Clients)
	for i := range outs {
		outs[i] = &ViewerOutcome{Movie: picker.Pick(rng.Float64())}
		if cfg.ArrivalSpread > 0 {
			outs[i].At = rng.DurationRange(0, cfg.ArrivalSpread)
		}
	}
	for i := range outs {
		out := outs[i]
		info := infos[out.Movie]
		path := paths[out.Movie]
		k.NewThread(fmt.Sprintf("zipf%02d:%s", i, path), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			defer func() { out.Stats.Done = true }()
			if k.Now() < out.At {
				th.SleepUntil(out.At)
			}
			h, err := srv.Open(th, info, path, core.OpenOptions{})
			if err != nil {
				return // rejected by admission: Admitted stays false
			}
			out.Admitted = true
			out.CacheBacked = h.CacheBacked()
			defer h.Close(th)
			playViewer(k, th, h, info, cfg.Player, &out.Stats)
		})
	}
	return outs
}

// playViewer is the CRASPlayer consumption loop for an already-open handle.
func playViewer(k *rtm.Kernel, th *rtm.Thread, h *core.Handle,
	info *media.StreamInfo, cfg PlayerConfig, stats *PlayerStats) {
	frameDur := sim.Time(time.Second)
	if len(info.Chunks) > 0 {
		frameDur = info.Chunks[0].Duration
	}
	cfg.fill(frameDur)
	if err := h.Start(th); err != nil {
		return
	}
	frames := len(info.Chunks)
	if cfg.MaxFrames > 0 && cfg.MaxFrames < frames {
		frames = cfg.MaxFrames
	}
	stats.Frames = frames
	begin := sim.Time(-1)
	for i := 0; i < frames; i++ {
		c := info.Chunks[i]
		due := h.ClockStartsAt(c.Timestamp)
		if begin < 0 {
			begin = due
		}
		if due >= 0 && k.Now() < due {
			th.SleepUntil(due)
		}
		// The wait budget anchors to the due time, so a run of lost frames
		// cannot push the player ever further behind the stream's clock (it
		// skips, as a real player would).
		limit := due + cfg.GiveUp
		for {
			if _, ok := h.Get(c.Timestamp); ok {
				stats.record(k.Now(), k.Now()-due, c.Size, cfg.Tolerance)
				th.Compute(cfg.FrameCPU)
				break
			}
			if k.Now() >= limit {
				stats.Lost++
				stats.LostAt = append(stats.LostAt, i)
				break
			}
			th.Sleep(cfg.Poll)
		}
		stats.Span = k.Now() - begin
	}
}
