package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
)

func TestCRASPlayerPlaysMovie(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 5*time.Second)
	var stats PlayerStats
	m := lab.Build(lab.Setup{
		Seed: 1, DiskCylinders: 600,
		Movies: []lab.Movie{{Path: "/m", Info: movie}},
	}, func(m *lab.Machine) {
		CRASPlayer(m.Kernel, m.CRAS, movie, "/m", core.OpenOptions{}, PlayerConfig{}, &stats)
	})
	m.Run(12 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if !stats.Done {
		t.Fatal("player did not finish")
	}
	if stats.Lost != 0 {
		t.Fatalf("lost %d frames", stats.Lost)
	}
	if stats.Obtained != stats.Frames || stats.Frames != 150 {
		t.Fatalf("obtained %d of %d frames", stats.Obtained, stats.Frames)
	}
	if stats.OnTimeBytes != stats.Bytes {
		t.Fatal("unloaded playback should be fully on time")
	}
	if s := stats.Delays.Summary(); s.Max > 0.02 {
		t.Fatalf("max delay %.3fs on an unloaded machine", s.Max)
	}
	if stats.Throughput() < 150000 {
		t.Fatalf("throughput %.0f B/s, want ~187500", stats.Throughput())
	}
}

func TestUFSPlayerPlaysMovie(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 5*time.Second)
	var stats PlayerStats
	m := lab.Build(lab.Setup{
		Seed: 1, DiskCylinders: 600, NoCRAS: true,
		Movies: []lab.Movie{{Path: "/m", Info: movie}},
	}, func(m *lab.Machine) {
		UFSPlayer(m.Kernel, m.Unix, movie, "/m", time.Second, PlayerConfig{}, &stats)
	})
	m.Run(12 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if !stats.Done || stats.Obtained != 150 {
		t.Fatalf("obtained %d frames, done=%v", stats.Obtained, stats.Done)
	}
	// One unloaded stream is within the UFS path's capability (the paper
	// supports up to nine without load).
	if s := stats.Delays.Summary(); s.Mean > 0.05 {
		t.Fatalf("mean UFS delay %.3fs for a single unloaded stream", s.Mean)
	}
}

// A miniature Figure 7: under background disk load, the UFS player's worst
// frame delay should exceed the CRAS player's by a wide margin.
func TestUFSJitterExceedsCRASUnderLoad(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 6*time.Second)
	bulk := media.MPEG1().Generate("/bulk", 10*time.Second)

	run := func(useCRAS bool) PlayerStats {
		var stats PlayerStats
		m := lab.Build(lab.Setup{
			Seed: 1, DiskCylinders: 900, NoCRAS: !useCRAS,
			Movies: []lab.Movie{{Path: "/m", Info: movie}, {Path: "/bulk", Info: bulk}},
		}, func(m *lab.Machine) {
			BackgroundReader(m.Kernel, m.Unix, "/bulk", rtm.PrioTS, 0)
			BackgroundReader(m.Kernel, m.Unix, "/bulk", rtm.PrioTS, 0)
			if useCRAS {
				CRASPlayer(m.Kernel, m.CRAS, movie, "/m", core.OpenOptions{}, PlayerConfig{}, &stats)
			} else {
				UFSPlayer(m.Kernel, m.Unix, movie, "/m", time.Second, PlayerConfig{}, &stats)
			}
		})
		m.Run(20 * time.Second)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return stats
	}

	crasStats := run(true)
	ufsStats := run(false)
	crasMax := crasStats.Delays.Summary().Max
	ufsMax := ufsStats.Delays.Summary().Max
	if crasStats.Lost > 2 {
		t.Fatalf("CRAS lost %d frames under load", crasStats.Lost)
	}
	if ufsMax < 2*crasMax {
		t.Fatalf("UFS max delay %.4fs vs CRAS %.4fs: expected clear separation", ufsMax, crasMax)
	}
}

func TestBackgroundReaderWrapsAround(t *testing.T) {
	small := media.CBRProfile{FrameRate: 30, Rate: 64000}.Generate("/small", time.Second)
	m := lab.Build(lab.Setup{
		Seed: 1, DiskCylinders: 400, NoCRAS: true,
		Movies: []lab.Movie{{Path: "/small", Info: small}},
	}, func(m *lab.Machine) {
		BackgroundReader(m.Kernel, m.Unix, "/small", rtm.PrioTS, 0)
	})
	m.Run(5 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	// A 64 KB file read in a loop for 5s must generate far more calls than
	// one pass would.
	if m.Unix.Calls < 50 {
		t.Fatalf("background reader made only %d server calls", m.Unix.Calls)
	}
}

func TestRawScannerKeepsQueueDeep(t *testing.T) {
	m := lab.Build(lab.Setup{Seed: 1, DiskCylinders: 400, NoCRAS: true},
		func(m *lab.Machine) {
			RawScanner(m.Kernel, m.Disk, "backup", 0, 0) // defaults: 64 KB, depth 8
		})
	m.Run(3 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	st := m.Disk.Stats()
	if st.MaxQueueDepth[0] < 6 {
		t.Fatalf("scanner max normal-queue depth = %d, want near 8", st.MaxQueueDepth[0])
	}
	// Near-continuous sequential I/O: the disk should be almost saturated.
	if st.BusyTime < 2500*time.Millisecond {
		t.Fatalf("disk busy only %v of 3s under the scanner", st.BusyTime)
	}
	if served := st.Served[0]; served < 100 {
		t.Fatalf("scanner completed only %d requests", served)
	}
}

func TestRawScannerWrapsAtDiskEnd(t *testing.T) {
	m := lab.Build(lab.Setup{Seed: 1, DiskCylinders: 160, DiskHeads: 2, NoCRAS: true},
		func(m *lab.Machine) {
			// A small disk: one pass takes ~3s, so the scanner must wrap
			// rather than run off the end.
			RawScanner(m.Kernel, m.Disk, "backup", 256<<10, 4)
		})
	m.Run(8 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	capacity := m.Disk.Geometry().Capacity()
	if moved := m.Disk.Stats().BytesMoved[0]; moved < capacity+capacity/2 {
		t.Fatalf("scanner moved %d bytes of a %d byte disk in 8s; did it wrap?", moved, capacity)
	}
}

func TestUFSPlayerMissingMovie(t *testing.T) {
	movie := media.MPEG1().Generate("/nosuch", time.Second)
	var stats PlayerStats
	m := lab.Build(lab.Setup{Seed: 1, DiskCylinders: 400, NoCRAS: true},
		func(m *lab.Machine) {
			UFSPlayer(m.Kernel, m.Unix, movie, "/nosuch", time.Second, PlayerConfig{}, &stats)
		})
	m.Run(3 * time.Second)
	if !stats.Done || stats.Obtained != 0 {
		t.Fatalf("player on missing movie: %+v", stats)
	}
}

func TestCRASPlayerAdmissionRejected(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 2*time.Second)
	var stats PlayerStats
	m := lab.Build(lab.Setup{
		Seed: 1, DiskCylinders: 600,
		Movies: []lab.Movie{{Path: "/m", Info: movie}},
		CRAS:   core.Config{BufferBudget: 1}, // nothing fits
	}, func(m *lab.Machine) {
		CRASPlayer(m.Kernel, m.CRAS, movie, "/m", core.OpenOptions{}, PlayerConfig{}, &stats)
	})
	m.Run(3 * time.Second)
	if !stats.Done || stats.Obtained != 0 {
		t.Fatalf("player past a rejected admission: %+v", stats)
	}
	if m.CRAS.Stats().AdmissionRejects != 1 {
		t.Fatal("admission reject not recorded")
	}
}

func TestCPUHogConsumesCPU(t *testing.T) {
	m := lab.Build(lab.Setup{Seed: 1, DiskCylinders: 400, NoCRAS: true},
		func(m *lab.Machine) {
			CPUHog(m.Kernel, "hog", rtm.PrioTS, 0, 0)
		})
	m.Run(3 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	// The hog should own essentially all CPU time after setup.
	if m.Kernel.Running() == nil {
		t.Fatal("hog not running")
	}
}

func TestPlayerStatsThroughputMath(t *testing.T) {
	var ps PlayerStats
	ps.Bytes = 1000000
	ps.OnTimeBytes = 500000
	ps.Span = 2 * time.Second
	if ps.Throughput() != 500000 {
		t.Fatalf("Throughput = %f", ps.Throughput())
	}
	if ps.OnTimeThroughput() != 250000 {
		t.Fatalf("OnTimeThroughput = %f", ps.OnTimeThroughput())
	}
	var empty PlayerStats
	if empty.Throughput() != 0 || empty.OnTimeThroughput() != 0 {
		t.Fatal("zero-span throughput should be 0")
	}
}
