package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// Misbehaving clients: the actors the control-plane hardening exists for.
// Each models one way a real application abuses (or abandons) its session;
// the server's leases, shed gate and bounded request port must contain the
// damage to the misbehaving client itself.

// FloodStats is what an open flood observed, split by outcome.
type FloodStats struct {
	Launched  int
	Admitted  int        // opens that succeeded (the flooder closes them again)
	Refused   int        // non-overload refusals (admission, draining, down)
	Shed      int        // typed overload errors (shed gate or full queue)
	RetryHint sim.Time   // last RetryAfter the shed gate suggested
	DoneAt    []sim.Time // completion time of every flood call, in launch order
}

// OpenFlooder launches count one-shot clients at the server, burst apart
// (0 = all at the same instant). Each opens the given movie without force,
// closes immediately on success, and records how it was turned away
// otherwise. The returned stats are complete once the engine drains.
func OpenFlooder(k *rtm.Kernel, srv *core.Server, info *media.StreamInfo, path string,
	count int, burst sim.Time, stats *FloodStats) {
	stats.Launched = count
	stats.DoneAt = make([]sim.Time, count)
	for i := 0; i < count; i++ {
		i := i
		k.NewThread(fmt.Sprintf("flood%d:%s", i, path), rtm.PrioTS, 0, func(th *rtm.Thread) {
			th.Sleep(sim.Time(i) * burst)
			h, err := srv.Open(th, info, path, core.OpenOptions{})
			stats.DoneAt[i] = k.Now()
			var oe *core.OverloadError
			switch {
			case err == nil:
				stats.Admitted++
				h.Close(th)
			case errors.As(err, &oe):
				stats.Shed++
				stats.RetryHint = oe.RetryAfter
			default:
				stats.Refused++
			}
		})
	}
}

// CrashingViewer plays a stream like CRASPlayer but dies without closing at
// crashAt — the client-side half of the dead-name drill. The stats stop at
// the crash; Done is still set so harnesses do not wait for a ghost.
func CrashingViewer(k *rtm.Kernel, srv *core.Server, info *media.StreamInfo, path string,
	crashAt sim.Time, cfg PlayerConfig, stats *PlayerStats) *rtm.Thread {
	frameDur := info.Chunks[0].Duration
	cfg.fill(frameDur)
	return k.NewThread("crashplay:"+path, cfg.Priority, cfg.Quantum, func(th *rtm.Thread) {
		defer func() { stats.Done = true }()
		h, err := srv.Open(th, info, path, core.OpenOptions{})
		if err != nil {
			return
		}
		if err := h.Start(th); err != nil {
			return
		}
		start := k.Now()
		for i, c := range info.Chunks {
			if k.Now() >= crashAt {
				h.Crash()
				break
			}
			due := h.ClockStartsAt(c.Timestamp)
			if due < 0 {
				break
			}
			if k.Now() < due {
				th.SleepUntil(due)
			}
			limit := due + cfg.GiveUp
			for {
				if _, ok := h.Get(c.Timestamp); ok {
					stats.record(k.Now(), k.Now()-due, c.Size, cfg.Tolerance)
					break
				}
				if k.Now() >= limit {
					stats.Lost++
					break
				}
				th.Sleep(cfg.Poll)
			}
			stats.Frames = i + 1
		}
		stats.Span = k.Now() - start
	})
}

// SilentClient opens a session, starts it, and then does nothing at all —
// no Get, no Renew, no Close. It is the lease reaper's canonical customer.
// openedAt (if non-nil) receives the time the open completed.
func SilentClient(k *rtm.Kernel, srv *core.Server, info *media.StreamInfo, path string,
	openedAt *sim.Time) *rtm.Thread {
	return k.NewThread("silent:"+path, rtm.PrioTS, 0, func(th *rtm.Thread) {
		h, err := srv.Open(th, info, path, core.OpenOptions{})
		if err != nil {
			return
		}
		h.Start(th)
		if openedAt != nil {
			*openedAt = k.Now()
		}
	})
}
