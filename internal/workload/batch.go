package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// BatchedViewerConfig shapes a premiere-style arrival pattern: the
// population arrives in waves — a marquee release, a program-guide
// boundary — with each wave's viewers landing within WaveSpread of the
// wave's start and the waves WaveGap apart. Waves are what the multicast
// batching window feeds on: same-wave viewers of a hot title fall inside
// one BatchWindow and coalesce into one disk-fed group, while later waves
// arrive past the window and depend on the pinned prefix to cover the gap
// back to the in-flight group.
type BatchedViewerConfig struct {
	Clients    int
	Alpha      float64  // Zipf skew of the movie choice
	Waves      int      // arrival bursts; default 1
	WaveGap    sim.Time // time between wave starts
	WaveSpread sim.Time // arrivals uniform in [wave start, +spread)
	Player     PlayerConfig
}

// LaunchBatchedViewers spawns a wave-structured Zipf population. Like
// LaunchZipfViewers, every random draw happens up front so the workload is
// a fixed script: identical (rng, config) inputs replay the identical
// arrival sequence. Viewers are dealt to waves round-robin, so every wave
// carries the same Zipf mix and wave-to-wave differences are the server's
// doing, not sampling noise.
func LaunchBatchedViewers(k *rtm.Kernel, srv *core.Server, infos []*media.StreamInfo,
	paths []string, rng *sim.RNG, cfg BatchedViewerConfig) []*ViewerOutcome {
	if cfg.Waves <= 0 {
		cfg.Waves = 1
	}
	picker := NewZipfPicker(len(paths), cfg.Alpha)
	outs := make([]*ViewerOutcome, cfg.Clients)
	for i := range outs {
		outs[i] = &ViewerOutcome{Movie: picker.Pick(rng.Float64())}
		outs[i].At = sim.Time(i%cfg.Waves) * cfg.WaveGap
		if cfg.WaveSpread > 0 {
			outs[i].At += rng.DurationRange(0, cfg.WaveSpread)
		}
	}
	for i := range outs {
		out := outs[i]
		info := infos[out.Movie]
		path := paths[out.Movie]
		k.NewThread(fmt.Sprintf("batch%02d:%s", i, path), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			defer func() { out.Stats.Done = true }()
			if k.Now() < out.At {
				th.SleepUntil(out.At)
			}
			h, err := srv.Open(th, info, path, core.OpenOptions{})
			if err != nil {
				return // rejected by admission: Admitted stays false
			}
			out.Admitted = true
			out.CacheBacked = h.CacheBacked()
			out.Multicast = h.MulticastMember()
			out.PrefixStart = h.PrefixStarted()
			defer h.Close(th)
			playViewer(k, th, h, info, cfg.Player, &out.Stats)
		})
	}
	return outs
}
