// Package workload provides the application-side actors of the evaluation:
// movie players that consume streams through CRAS or through the Unix file
// system, the background "cat" readers that generate competing disk
// traffic, and the CPU-bound competitors of Figure 10.
package workload

import (
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// PlayerStats is what a player measured: per-frame delay samples (obtained
// time minus due time), counts, and delivered bytes.
type PlayerStats struct {
	Delays      metrics.Series // one sample per obtained frame, seconds
	DelaySeries metrics.Series // (real time, delay seconds) for Figure 7/10 traces
	Frames      int
	Obtained    int
	Lost        int
	LostAt      []int // frame indices of lost frames (diagnostics)
	Bytes       int64 // bytes of all obtained frames
	OnTimeBytes int64 // bytes of frames obtained within the tolerance
	Span        sim.Time
	Done        bool
}

// Throughput returns delivered bytes per second over the measured span.
func (ps *PlayerStats) Throughput() float64 {
	if ps.Span <= 0 {
		return 0
	}
	return float64(ps.Bytes) / ps.Span.Seconds()
}

// OnTimeThroughput returns on-time bytes per second over the measured span.
func (ps *PlayerStats) OnTimeThroughput() float64 {
	if ps.Span <= 0 {
		return 0
	}
	return float64(ps.OnTimeBytes) / ps.Span.Seconds()
}

// PlayerConfig tunes a player.
type PlayerConfig struct {
	Priority  int      // thread priority
	Quantum   sim.Time // 0 = fixed priority
	Poll      sim.Time // buffer poll interval; default 2ms
	Tolerance sim.Time // on-time threshold; default one frame duration
	GiveUp    sim.Time // per-frame wait budget; default 5 frame durations
	MaxFrames int      // 0 = whole movie
	FrameCPU  sim.Time // decode cost charged per obtained frame
}

func (c *PlayerConfig) fill(frameDur sim.Time) {
	if c.Priority == 0 {
		c.Priority = rtm.PrioRTLow
	}
	if c.Poll == 0 {
		c.Poll = 2 * time.Millisecond
	}
	if c.Tolerance == 0 {
		c.Tolerance = frameDur
	}
	if c.GiveUp == 0 {
		c.GiveUp = 5 * frameDur
	}
}

// CRASPlayer opens a stream on the CRAS server and consumes it frame by
// frame at its natural rate, producing delay measurements. It runs as its
// own thread and fills stats as it goes; Done is set when playback ends.
func CRASPlayer(k *rtm.Kernel, srv *core.Server, info *media.StreamInfo, path string,
	opts core.OpenOptions, cfg PlayerConfig, stats *PlayerStats) *rtm.Thread {
	return k.NewThread("crasplay:"+path, cfg.Priority, cfg.Quantum, func(th *rtm.Thread) {
		defer func() { stats.Done = true }()
		h, err := srv.Open(th, info, path, opts)
		if err != nil {
			return
		}
		defer h.Close(th)
		playViewer(k, th, h, info, cfg, stats)
	})
}

// UFSPlayer consumes a movie through the Unix file system: at each frame's
// due time it issues a read for the frame's bytes through the server. This
// is the baseline of Figures 6 and 7 — no admission, no real-time queue,
// priority inversion through the shared server thread.
func UFSPlayer(k *rtm.Kernel, srv *ufs.Server, info *media.StreamInfo, path string,
	initialDelay sim.Time, cfg PlayerConfig, stats *PlayerStats) *rtm.Thread {
	frameDur := sim.Time(time.Second)
	if len(info.Chunks) > 0 {
		frameDur = info.Chunks[0].Duration
	}
	cfg.fill(frameDur)
	return k.NewThread("ufsplay:"+path, cfg.Priority, cfg.Quantum, func(th *rtm.Thread) {
		defer func() { stats.Done = true }()
		c := ufs.NewClient(srv, th)
		fd, err := c.Open(path)
		if err != nil {
			return
		}
		defer c.Close(fd) //crasvet:allow ioerrcheck -- read-only fd; close cannot lose data
		frames := len(info.Chunks)
		if cfg.MaxFrames > 0 && cfg.MaxFrames < frames {
			frames = cfg.MaxFrames
		}
		stats.Frames = frames
		start := k.Now() + initialDelay
		begin := start
		for i := 0; i < frames; i++ {
			ch := info.Chunks[i]
			due := start + ch.Timestamp
			if k.Now() < due {
				th.SleepUntil(due)
			}
			data, err := c.Read(fd, ch.Offset, int(ch.Size))
			if err != nil || int64(len(data)) != ch.Size {
				stats.Lost++
				continue
			}
			stats.record(k.Now(), k.Now()-due, ch.Size, cfg.Tolerance)
			th.Compute(cfg.FrameCPU)
			stats.Span = k.Now() - begin
		}
	})
}

func (ps *PlayerStats) record(now, delay sim.Time, size int64, tolerance sim.Time) {
	if delay < 0 {
		delay = 0
	}
	ps.Obtained++
	ps.Bytes += size
	if delay <= tolerance {
		ps.OnTimeBytes += size
	}
	ps.Delays.Add(now, delay.Seconds())
	ps.DelaySeries.Add(now, delay.Seconds())
}

// BackgroundReader launches the paper's competing disk activity: a
// low-priority "cat" that sequentially reads a file through the Unix
// server as fast as the server lets it, looping forever. Each syscall
// covers 256 KB, but the server's cache issues disk requests of at most one
// read-ahead cluster (64 KB) — the B_other bound the admission test
// charges for. Because the Unix server is one thread, every cluster the
// cat waits on blocks the server for everyone, which is the priority
// inversion the paper attributes to the Unix file system.
func BackgroundReader(k *rtm.Kernel, srv *ufs.Server, path string, prio int, quantum sim.Time) *rtm.Thread {
	return k.NewThread("cat:"+path, prio, quantum, func(th *rtm.Thread) {
		c := ufs.NewClient(srv, th)
		fd, err := c.Open(path)
		if err != nil {
			return
		}
		st, err := c.Stat(path)
		if err != nil || st.Size == 0 {
			return
		}
		const req = 256 << 10
		var off int64
		for {
			data, err := c.Read(fd, off, req)
			if err != nil {
				return
			}
			off += int64(len(data))
			if int64(len(data)) < req {
				off = 0 // wrap: cat it again
			}
		}
	})
}

// RawScanner launches a backup-style scanner that reads the raw device
// sequentially on the normal disk queue, keeping qdepth requests in flight.
// Unlike the cats (which serialize behind the single Unix server thread),
// a scanner builds real queue depth — the situation the paper's split
// real-time/normal driver queue exists for: without the split, a
// continuous-media batch waits behind every queued scanner request.
func RawScanner(k *rtm.Kernel, d *disk.Disk, name string, reqBytes, qdepth int) *rtm.Thread {
	if reqBytes == 0 {
		reqBytes = 64 << 10
	}
	if qdepth == 0 {
		qdepth = 8
	}
	sectors := reqBytes / 512
	return k.NewThread(name, rtm.PrioTS, 0, func(th *rtm.Thread) {
		total := d.Geometry().TotalSectors()
		var lba int64
		inflight := 0
		for {
			for inflight < qdepth {
				inflight++
				d.Submit(&disk.Request{
					LBA: lba, Count: sectors,
					Done: func(r *disk.Request, _ []byte) {
						inflight--
						th.Proc().Unblock()
					},
				})
				lba += int64(sectors)
				if lba+int64(sectors) > total {
					lba = 0
				}
			}
			th.Proc().Block("scanner: queue full")
		}
	})
}

// CPUHog launches a thread that consumes the CPU in fixed bursts forever —
// the competing computation of Figure 10.
func CPUHog(k *rtm.Kernel, name string, prio int, quantum, burst sim.Time) *rtm.Thread {
	if burst == 0 {
		burst = 20 * time.Millisecond
	}
	return k.NewThread(name, prio, quantum, func(th *rtm.Thread) {
		for {
			th.Compute(burst)
		}
	})
}
