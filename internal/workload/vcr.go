package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// VCRViewerConfig shapes an interactive population: alongside the plain
// lean-back viewers, a fraction of the audience zaps (channel-surf seeks
// and speed flips) and a fraction scrubs (pause, dwell, resume, instant
// replay). Every interactive viewer runs a pre-drawn script of Ops VCR
// operations spaced OpFrames of playback apart, so identical (rng,
// config) inputs replay the identical operation sequence.
type VCRViewerConfig struct {
	Clients       int
	Alpha         float64  // Zipf skew of the movie choice
	ArrivalSpread sim.Time // arrivals uniform in [0, spread)
	ZapFraction   float64  // of clients that channel-surf; default 0.25
	ScrubFraction float64  // of clients that pause/scrub; default 0.25
	Ops           int      // VCR operations per interactive viewer; default 3
	OpFrames      int      // frames played between operations; default 45
	PauseDwell    sim.Time // scrubber freeze length; default 1.5 s
	Player        PlayerConfig
}

func (c *VCRViewerConfig) fill() {
	if c.ZapFraction == 0 {
		c.ZapFraction = 0.25
	}
	if c.ScrubFraction == 0 {
		c.ScrubFraction = 0.25
	}
	if c.Ops == 0 {
		c.Ops = 3
	}
	if c.OpFrames == 0 {
		c.OpFrames = 45
	}
	if c.PauseDwell == 0 {
		c.PauseDwell = 1500 * time.Millisecond
	}
}

// VCROutcome extends the plain viewer outcome with the interactive record:
// what kind of viewer this was, how many VCR operations it issued, how
// many came back as typed refusals, and the delivered rate it ended on
// (reduced-rate warm-up, ladder step-downs and rate changes all move it).
type VCROutcome struct {
	ViewerOutcome
	Kind        string // "plain" | "zapper" | "scrubber"
	Ops         int    // VCR operations issued
	Refusals    int    // answered with a typed ErrVCRRefused
	ReducedOpen bool   // warm-up admitted below full delivered rate
	FinalRate   float64
}

// vcrOp is one pre-drawn script entry.
type vcrOp struct {
	kind string  // "seek" | "pause" | "rate"
	frac float64 // seek target as a fraction of the title
	rate float64 // rate to flip to (a later op flips back)
}

// LaunchVCRViewers spawns the interactive Zipf population. Like the other
// Launch helpers, every random draw — movie, arrival, viewer kind, and
// the whole per-viewer operation script — happens up front, so the
// workload is a fixed script regardless of server interleaving.
func LaunchVCRViewers(k *rtm.Kernel, srv *core.Server, infos []*media.StreamInfo,
	paths []string, rng *sim.RNG, cfg VCRViewerConfig) []*VCROutcome {
	cfg.fill()
	picker := NewZipfPicker(len(paths), cfg.Alpha)
	outs := make([]*VCROutcome, cfg.Clients)
	scripts := make([][]vcrOp, cfg.Clients)
	for i := range outs {
		outs[i] = &VCROutcome{ViewerOutcome: ViewerOutcome{Movie: picker.Pick(rng.Float64())}, Kind: "plain"}
		if cfg.ArrivalSpread > 0 {
			outs[i].At = rng.DurationRange(0, cfg.ArrivalSpread)
		}
		switch u := rng.Float64(); {
		case u < cfg.ZapFraction:
			outs[i].Kind = "zapper"
		case u < cfg.ZapFraction+cfg.ScrubFraction:
			outs[i].Kind = "scrubber"
		}
		if outs[i].Kind == "plain" {
			continue
		}
		script := make([]vcrOp, cfg.Ops)
		for j := range script {
			switch outs[i].Kind {
			case "zapper":
				// Zappers hop around the title and flip speeds: 2x skims on
				// even ops, a jump-cut seek on odd ones.
				if j%2 == 0 {
					script[j] = vcrOp{kind: "rate", rate: []float64{2, 1}[j%4/2]}
				} else {
					script[j] = vcrOp{kind: "seek", frac: rng.Float64() * 0.8}
				}
			case "scrubber":
				// Scrubbers freeze the frame and replay: pauses alternate
				// with short seeks back.
				if j%2 == 0 {
					script[j] = vcrOp{kind: "pause"}
				} else {
					script[j] = vcrOp{kind: "seek", frac: rng.Float64() * 0.5}
				}
			}
		}
		scripts[i] = script
	}
	for i := range outs {
		out := outs[i]
		script := scripts[i]
		info := infos[out.Movie]
		path := paths[out.Movie]
		k.NewThread(fmt.Sprintf("vcr%02d:%s", i, path), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			defer func() { out.Stats.Done = true }()
			if k.Now() < out.At {
				th.SleepUntil(out.At)
			}
			h, err := srv.Open(th, info, path, core.OpenOptions{})
			if err != nil {
				return // rejected by admission: Admitted stays false
			}
			out.Admitted = true
			out.CacheBacked = h.CacheBacked()
			out.Multicast = h.MulticastMember()
			out.PrefixStart = h.PrefixStarted()
			out.ReducedOpen = h.DeliveredRate() < 1
			defer func() {
				out.FinalRate = h.DeliveredRate()
				h.Close(th)
			}()
			playVCRViewer(k, th, h, info, cfg, script, out)
		})
	}
	return outs
}

// playVCRViewer is playViewer with the viewer's VCR script spliced in:
// after every OpFrames obtained-or-lost frames the next operation runs on
// the viewer's own thread, so its position in the delivery sequence is
// deterministic. Typed refusals are counted and playback continues; any
// other error ends the session (the server evicted us).
func playVCRViewer(k *rtm.Kernel, th *rtm.Thread, h *core.Handle,
	info *media.StreamInfo, vcfg VCRViewerConfig, script []vcrOp, out *VCROutcome) {
	stats := &out.Stats
	cfg := vcfg.Player
	frameDur := sim.Time(time.Second)
	if len(info.Chunks) > 0 {
		frameDur = info.Chunks[0].Duration
	}
	cfg.fill(frameDur)
	if err := h.Start(th); err != nil {
		return
	}
	frames := len(info.Chunks)
	if cfg.MaxFrames > 0 && cfg.MaxFrames < frames {
		frames = cfg.MaxFrames
	}
	begin := sim.Time(-1)
	sinceOp := 0
	for i := 0; i < frames; i++ {
		if len(script) > 0 && sinceOp >= vcfg.OpFrames {
			sinceOp = 0
			op := script[0]
			script = script[1:]
			out.Ops++
			switch op.kind {
			case "seek":
				// Clamp inside the frames this viewer will actually play, so a
				// jump never lands past the measured window.
				target := sim.Time(op.frac * float64(sim.Time(frames)*frameDur))
				if err := h.Seek(th, target); err != nil {
					if !errors.Is(err, core.ErrVCRRefused) {
						return
					}
					out.Refusals++
				} else if next := int(target / frameDur); next < frames {
					i = next // resume consumption at the new play point
				}
			case "pause":
				if err := h.Pause(th); err != nil {
					if !errors.Is(err, core.ErrVCRRefused) {
						return
					}
					out.Refusals++
					break
				}
				th.Sleep(vcfg.PauseDwell)
				if err := h.Resume(th); err != nil {
					if !errors.Is(err, core.ErrVCRRefused) {
						return
					}
					out.Refusals++
					// The paused slot could not be re-admitted; wait out the
					// quoted hint once and give up for good on a second no.
					var vcr *core.VCRError
					if errors.As(err, &vcr) && vcr.RetryAfter > 0 {
						th.Sleep(vcr.RetryAfter)
					}
					if err := h.Resume(th); err != nil {
						return
					}
				}
			case "rate":
				if err := h.SetRate(th, op.rate); err != nil {
					if !errors.Is(err, core.ErrVCRRefused) {
						return
					}
					out.Refusals++
				}
			}
		}
		c := info.Chunks[i]
		due := h.ClockStartsAt(c.Timestamp)
		if due < 0 {
			return // clock stopped under us: suspended or evicted
		}
		if begin < 0 {
			begin = due
		}
		if k.Now() < due {
			th.SleepUntil(due)
		}
		limit := due + cfg.GiveUp
		for {
			if _, ok := h.Get(c.Timestamp); ok {
				stats.record(k.Now(), k.Now()-due, c.Size, cfg.Tolerance)
				th.Compute(cfg.FrameCPU)
				break
			}
			if k.Now() >= limit {
				stats.Lost++
				break
			}
			th.Sleep(cfg.Poll)
		}
		stats.Frames++
		sinceOp++
		stats.Span = k.Now() - begin
	}
}
