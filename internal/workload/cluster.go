package workload

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// ClusterViewerOutcome is one Zipf viewer's fate against the sharded front
// door: which movie it asked for, whether cluster-wide admission let it in
// (and on which node), whether the open rode RAM-shared capacity, and its
// delivery record.
type ClusterViewerOutcome struct {
	Movie    int
	At       sim.Time // scripted arrival time
	Admitted bool
	Node     int  // node the open landed on
	Shared   bool // rode a multicast group or the interval cache at open
	Moved    bool // failed over or migrated to another node at least once
	Frames   int
	Obtained int
	Lost     int
	Done     bool
}

// ClusterViewerConfig shapes the cluster arrival pattern.
type ClusterViewerConfig struct {
	Clients       int
	Alpha         float64
	ArrivalSpread sim.Time // viewer arrivals uniform in [0, spread)
	MaxFrames     int      // 0 = whole movie
	GiveUp        sim.Time // per-frame wait budget; default 5 frame durations
}

// LaunchClusterViewers spawns a population of viewers whose title choices
// follow Zipf(alpha) against the cluster front door. As with the
// single-node launchers, every random draw happens up front so the workload
// is a fixed script. The consumption loop recomputes each frame's deadline
// every wait step, so a mid-play failover or migration (which re-anchors
// the clock on a replacement node) turns into waiting, not loss. Callers
// poll Done.
func LaunchClusterViewers(c *cluster.Cluster, paths []string, rng *sim.RNG,
	cfg ClusterViewerConfig) []*ClusterViewerOutcome {
	picker := NewZipfPicker(len(paths), cfg.Alpha)
	outs := make([]*ClusterViewerOutcome, cfg.Clients)
	for i := range outs {
		outs[i] = &ClusterViewerOutcome{Movie: picker.Pick(rng.Float64())}
		if cfg.ArrivalSpread > 0 {
			outs[i].At = rng.DurationRange(0, cfg.ArrivalSpread)
		}
	}
	for i := range outs {
		out := outs[i]
		path := paths[out.Movie]
		c.Kernel().NewThread(fmt.Sprintf("cview%02d:%s", i, path), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			defer func() { out.Done = true }()
			if c.Kernel().Now() < out.At {
				th.SleepUntil(out.At)
			}
			s, err := c.Open(th, path, core.OpenOptions{})
			if err != nil {
				return // refused cluster-wide: Admitted stays false
			}
			out.Admitted = true
			out.Node = s.NodeID()
			out.Shared = s.MulticastMember() || s.CacheBacked()
			playClusterViewer(c, th, s, out, cfg)
			out.Moved = s.Gen() > 0
		})
	}
	return outs
}

// playClusterViewer consumes one cluster session frame by frame.
func playClusterViewer(c *cluster.Cluster, th *rtm.Thread, s *cluster.Session,
	out *ClusterViewerOutcome, cfg ClusterViewerConfig) {
	info := s.Info()
	if err := s.Start(th); err != nil {
		out.Lost = out.Frames
		s.Close(th)
		return
	}
	frames := len(info.Chunks)
	if cfg.MaxFrames > 0 && cfg.MaxFrames < frames {
		frames = cfg.MaxFrames
	}
	out.Frames = frames
	giveUp := cfg.GiveUp
	if giveUp == 0 && frames > 0 {
		giveUp = 5 * info.Chunks[0].Duration
	}
	for i := 0; i < frames; i++ {
		ch := info.Chunks[i]
		for {
			if s.Refused() {
				out.Lost += frames - i
				s.Close(th)
				return
			}
			due := s.ClockStartsAt(ch.Timestamp)
			now := c.Kernel().Now()
			if due < 0 {
				out.Lost++
				th.Sleep(ch.Duration)
				break
			}
			if now < due {
				wait := due - now
				if wait > 100*time.Millisecond {
					wait = 100 * time.Millisecond // re-check: a failover may move the deadline
				}
				th.Sleep(wait)
				continue
			}
			if _, ok := s.Get(ch.Timestamp); ok {
				out.Obtained++
				break
			}
			if now >= due+giveUp {
				out.Lost++
				break
			}
			th.Sleep(2 * time.Millisecond)
		}
	}
	s.Close(th)
}
