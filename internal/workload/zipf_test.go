package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/sim"
)

func TestZipfPickerLaw(t *testing.T) {
	// Uniform at alpha 0: every rank equally likely.
	z := NewZipfPicker(4, 0)
	for r := 0; r < 4; r++ {
		u := (float64(r) + 0.5) / 4
		if got := z.Pick(u); got != r {
			t.Errorf("alpha 0: Pick(%.3f) = %d, want %d", u, got, r)
		}
	}
	// Skewed at alpha 1.1: rank 0 takes the largest share, monotonically
	// shrinking down the tail.
	z = NewZipfPicker(6, 1.1)
	counts := make([]int, 6)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[z.Pick((float64(i)+0.5)/n)]++ // a uniform grid, no RNG needed
	}
	for r := 1; r < 6; r++ {
		if counts[r] > counts[r-1] {
			t.Errorf("alpha 1.1: rank %d drawn %d > rank %d drawn %d", r, counts[r], r-1, counts[r-1])
		}
	}
	if counts[0] < n/3 {
		t.Errorf("alpha 1.1: top rank drew only %d/%d", counts[0], n)
	}
}

// A Zipf viewer population on a small machine: the script is deterministic,
// every admitted viewer plays, and at a skewed alpha repeat viewers of the
// hot title ride the interval cache.
func TestZipfViewersRideCache(t *testing.T) {
	const nMovies, nClients = 3, 6
	var infos []*media.StreamInfo
	var paths []string
	var movies []lab.Movie
	for _, p := range []string{"/z0", "/z1", "/z2"} {
		info := media.MPEG1().Generate(p, 8*time.Second)
		infos = append(infos, info)
		paths = append(paths, p)
		movies = append(movies, lab.Movie{Path: p, Info: info})
	}
	var outs []*ViewerOutcome
	m := lab.Build(lab.Setup{
		Seed: 3, DiskCylinders: 600,
		CRAS:   core.Config{CacheBudget: 16 << 20},
		Movies: movies,
	}, func(m *lab.Machine) {
		outs = LaunchZipfViewers(m.Kernel, m.CRAS, infos, paths,
			m.Eng.RNG("zipf"), ZipfViewerConfig{
				Clients: nClients, Alpha: 1.1, ArrivalSpread: 3 * time.Second,
				Player: PlayerConfig{MaxFrames: 60},
			})
	})
	for ran := sim.Time(0); ran < 60*time.Second; ran += time.Second {
		m.Run(time.Second)
		done := true
		for _, o := range outs {
			if !o.Stats.Done {
				done = false
			}
		}
		if done {
			break
		}
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}

	admitted, cacheBacked := 0, 0
	byMovie := map[int]int{}
	for i, o := range outs {
		if !o.Stats.Done {
			t.Fatalf("viewer %d never finished", i)
		}
		byMovie[o.Movie]++
		if !o.Admitted {
			continue
		}
		admitted++
		if o.CacheBacked {
			cacheBacked++
		}
		if o.Stats.Obtained == 0 {
			t.Errorf("viewer %d admitted but obtained nothing", i)
		}
	}
	if admitted != nClients {
		t.Errorf("admitted %d/%d on an unloaded machine", admitted, nClients)
	}
	// Alpha 1.1 over 3 titles with 6 clients collides with near-certainty
	// under this fixed seed; a collision inside the overlap window must
	// have attached to the cache.
	if byMovie[0] < 2 {
		t.Fatalf("seed no longer collides on the hot title: %v", byMovie)
	}
	if cacheBacked == 0 {
		t.Error("no viewer rode the interval cache")
	}
	if m.CRAS.Stats().CacheHits == 0 {
		t.Error("no cache hits across the population")
	}
}
