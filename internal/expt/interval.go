package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// IntervalPoint is one interval-time setting's outcome.
type IntervalPoint struct {
	Interval     sim.Time
	AdmittedMax  int      // streams the admission test accepts
	BufferNeeded int64    // B_total at that capacity
	MinDelay     sim.Time // 2T, the smallest initial delay the pipeline needs
	VerifiedLost int      // lost frames in a measured run at the admitted max
}

// IntervalResult quantifies Section 2.2's tradeoff: "The interval time is
// determined by a tradeoff between the maximum number of streams supported
// by CRAS and the initial delay of the output streams." Longer intervals
// amortize per-interval overheads over more data (more streams admitted)
// but cost proportionally more buffer memory and startup delay.
type IntervalResult struct {
	Profile media.CBRProfile
	Points  []IntervalPoint
}

// RunIntervalSweep computes the admitted capacity at several interval
// times and verifies each capacity with a measured run.
func RunIntervalSweep(seed int64, intervals []sim.Time, verifySeconds sim.Time) *IntervalResult {
	if len(intervals) == 0 {
		intervals = []sim.Time{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second}
	}
	if verifySeconds == 0 {
		verifySeconds = 10 * time.Second
	}
	profile := media.MPEG1()
	res := &IntervalResult{Profile: profile}

	// Admission parameters come from the standard disk.
	eng := sim.NewEngine(seed)
	g, p := disk.ST32550N()
	d := disk.New(eng, "probe", g, p)
	params := core.MeasureAdmissionParams(d, 64<<10)

	sp := core.StreamParams{Rate: profile.Rate, Chunk: int64(profile.Rate / float64(profile.FrameRate))}
	for _, t := range intervals {
		max := params.MaxStreams(t, 1<<30, sp)
		set := make([]core.StreamParams, max)
		for i := range set {
			set[i] = sp
		}
		pt := IntervalPoint{
			Interval:     t,
			AdmittedMax:  max,
			BufferNeeded: core.TotalBuffer(t, set),
			MinDelay:     2 * t,
		}
		if max > 0 {
			r := RunPlayback(PlaybackConfig{
				Seed: seed, Streams: max, Profile: profile,
				Duration: verifySeconds, UseCRAS: true,
				Interval: t, InitialDelay: 2 * t,
			})
			pt.VerifiedLost = r.LostFrames()
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the tradeoff.
func (r *IntervalResult) Table() *metrics.Table {
	t := metrics.NewTable("Interval-time tradeoff (Section 2.2): capacity vs delay and memory, 1.5 Mb/s streams",
		"interval T", "admitted streams", "B_total", "min initial delay", "startup losses at capacity")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%v", p.Interval), p.AdmittedMax,
			fmt.Sprintf("%d KB", p.BufferNeeded/1024),
			fmt.Sprintf("%v", p.MinDelay), p.VerifiedLost)
	}
	return t
}
