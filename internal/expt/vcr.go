package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// VCRSweepConfig drives the interactive-viewer evaluation: one seeded
// zapping/scrubbing population (internal/workload VCR viewers) replayed
// against two admission policies over the same RAM — the paper's
// suspend-on-refusal server (no ladder: a viewer the interval cannot carry
// at full rate is turned away), and the adaptive frame-rate ladder
// (refused opens warm up at a reduced delivered rate and recover). The
// arrival and operation script is byte-identical across the modes, so the
// admitted-viewer difference is the ladder's doing.
type VCRSweepConfig struct {
	Seed          int64
	Movies        int      // catalog size; default 12
	Clients       int      // viewer population; default 40
	Duration      sim.Time // measured playback per viewer; default 12 s
	ArrivalSpread sim.Time // arrivals uniform in [0, spread); default 8 s
	TotalRAM      int64    // stream-buffer budget; default 48 MB
	Alpha         float64  // Zipf skew; default 1.1
}

// VCRPoint is one admission policy's outcome under the shared script.
type VCRPoint struct {
	Mode         string  `json:"mode"` // suspend | ladder
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	ReducedOpens int     `json:"reduced_opens"` // admitted below full delivered rate (warm-up)
	StepDowns    int     `json:"step_downs"`    // ladder moves down instead of suspending
	StepUps      int     `json:"step_ups"`      // recoveries back toward full rate
	Suspended    int     `json:"suspended"`     // streams the health ladder suspended
	Ops          int     `json:"ops"`           // VCR operations the population issued
	Refusals     int     `json:"refusals"`      // answered with a typed ErrVCRRefused
	Pauses       int     `json:"pauses"`
	Seeks        int     `json:"seeks"`
	RateChanges  int     `json:"rate_changes"`
	AvgFinalRate float64 `json:"avg_final_rate"` // mean delivered rate at close, admitted viewers
	Lost         int     `json:"lost"`           // frames lost across all admitted viewers
	DiskUtil     float64 `json:"disk_util"`
}

// VCRSweepResult is the two-row comparison, snapshotted to BENCH_vcr.json
// by crasbench.
type VCRSweepResult struct {
	Clients int        `json:"clients"`
	Alpha   float64    `json:"alpha"`
	RAMMB   int64      `json:"ram_mb"`
	Points  []VCRPoint `json:"points"`
}

// Point returns the row for the mode, or nil.
func (r *VCRSweepResult) Point(mode string) *VCRPoint {
	for i := range r.Points {
		if r.Points[i].Mode == mode {
			return &r.Points[i]
		}
	}
	return nil
}

// RunVCRSweep replays the identical seeded interactive script under both
// admission policies.
func RunVCRSweep(cfg VCRSweepConfig) *VCRSweepResult {
	if cfg.Movies == 0 {
		cfg.Movies = 12
	}
	if cfg.Clients == 0 {
		cfg.Clients = 40
	}
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Second
	}
	if cfg.ArrivalSpread == 0 {
		cfg.ArrivalSpread = 8 * time.Second
	}
	if cfg.TotalRAM == 0 {
		cfg.TotalRAM = 48 << 20
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.1
	}

	res := &VCRSweepResult{Clients: cfg.Clients, Alpha: cfg.Alpha, RAMMB: cfg.TotalRAM >> 20}
	for _, mode := range []struct {
		name   string
		ladder []float64
	}{
		// Suspend-on-refusal: the paper's server. Admission is all or
		// nothing — a refused open is a rejected viewer.
		{"suspend", nil},
		// Adaptive ladder: a refused open warms up at a reduced delivered
		// rate, and degraded streams step down instead of suspending.
		{"ladder", []float64{1, 0.75, 0.5}},
	} {
		res.Points = append(res.Points, runVCRPoint(cfg, mode.name, mode.ladder))
	}
	return res
}

func runVCRPoint(cfg VCRSweepConfig, mode string, ladder []float64) VCRPoint {
	// MPEG2-rate titles: at 6 Mb/s the per-stream interval cost is mostly
	// transfer time, which is exactly the term delivered-rate thinning
	// scales — the rung walk buys real capacity, not just overhead shuffling.
	prof := media.MPEG2()
	movieDur := cfg.Duration + cfg.ArrivalSpread + 2*time.Second
	var movies []lab.Movie
	var infos []*media.StreamInfo
	var paths []string
	for i := 0; i < cfg.Movies; i++ {
		path := fmt.Sprintf("/m%02d", i)
		info := prof.Generate(path, movieDur)
		movies = append(movies, lab.Movie{Path: path, Info: info})
		infos = append(infos, info)
		paths = append(paths, path)
	}

	frames := int(cfg.Duration / (sim.Time(time.Second) / sim.Time(prof.FrameRate)))
	var outs []*workload.VCROutcome
	var busy0 sim.Time
	var start sim.Time
	m := lab.Build(lab.Setup{
		Seed: cfg.Seed,
		CRAS: core.Config{
			BufferBudget: cfg.TotalRAM,
			RateLadder:   ladder,
		},
		Movies: movies,
	}, func(m *lab.Machine) {
		start = m.Eng.Now()
		busy0 = m.Disk.Stats().BusyTime // setup I/O is not the sweep's traffic
		outs = workload.LaunchVCRViewers(m.Kernel, m.CRAS, infos, paths,
			m.Eng.RNG("vcr-sweep"), workload.VCRViewerConfig{
				Clients: cfg.Clients, Alpha: cfg.Alpha,
				ArrivalSpread: cfg.ArrivalSpread,
				Player:        workload.PlayerConfig{MaxFrames: frames},
			})
	})
	horizon := 2*cfg.Duration + cfg.ArrivalSpread + 30*time.Second
	for ran := sim.Time(0); ran < horizon; ran += time.Second {
		m.Run(time.Second)
		done := true
		for _, o := range outs {
			if !o.Stats.Done {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if err := m.Err(); err != nil {
		panic(err)
	}

	pt := VCRPoint{Mode: mode}
	var rateSum float64
	for _, o := range outs {
		if !o.Admitted {
			pt.Rejected++
			continue
		}
		pt.Admitted++
		if o.ReducedOpen {
			pt.ReducedOpens++
		}
		pt.Ops += o.Ops
		pt.Refusals += o.Refusals
		pt.Lost += o.Stats.Lost
		rateSum += o.FinalRate
	}
	if pt.Admitted > 0 {
		pt.AvgFinalRate = rateSum / float64(pt.Admitted)
	}
	st := m.CRAS.Stats()
	pt.StepDowns = st.RateStepDowns
	pt.StepUps = st.RateStepUps
	pt.Suspended = st.StreamsSuspended
	pt.Pauses = st.Pauses
	pt.Seeks = st.Seeks
	pt.RateChanges = st.RateChanges
	if elapsed := m.Eng.Now() - start; elapsed > 0 {
		pt.DiskUtil = float64(m.Disk.Stats().BusyTime-busy0) / float64(elapsed)
	}
	return pt
}

// Table renders the sweep.
func (r *VCRSweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("VCR admission: suspend-on-refusal vs frame-rate ladder, %d viewers, Zipf %.1f, %d MB RAM",
			r.Clients, r.Alpha, r.RAMMB),
		"mode", "admitted", "rejected", "reduced opens", "step-downs", "step-ups",
		"suspended", "VCR ops", "refusals", "pauses", "seeks", "rate changes",
		"avg rate", "lost", "disk util")
	for _, pt := range r.Points {
		t.AddRow(
			pt.Mode, pt.Admitted, pt.Rejected, pt.ReducedOpens, pt.StepDowns, pt.StepUps,
			pt.Suspended, pt.Ops, pt.Refusals, pt.Pauses, pt.Seeks, pt.RateChanges,
			fmt.Sprintf("%.2f", pt.AvgFinalRate),
			pt.Lost,
			fmt.Sprintf("%.0f%%", 100*pt.DiskUtil),
		)
	}
	return t
}
