package expt

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig7Config parameterizes the delay-trace comparison of Figure 7: one
// video stream retrieved while other activities access the same disk,
// measuring each frame's delay over time for CRAS and for UFS.
type Fig7Config struct {
	Seed     int64
	Duration sim.Time
}

func (c *Fig7Config) fill() {
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
}

// Fig7Result carries both delay traces.
type Fig7Result struct {
	Config Fig7Config
	CRAS   metrics.Series // (real time, delay seconds)
	UFS    metrics.Series
}

// RunFig7 regenerates Figure 7.
func RunFig7(cfg Fig7Config) *Fig7Result {
	cfg.fill()
	res := &Fig7Result{Config: cfg}
	base := PlaybackConfig{
		Seed: cfg.Seed, Streams: 1, Profile: media.MPEG1(),
		Duration: cfg.Duration, Load: true,
	}
	c := base
	c.UseCRAS = true
	res.CRAS = RunPlayback(c).Players[0].DelaySeries
	c = base
	res.UFS = RunPlayback(c).Players[0].DelaySeries
	return res
}

// Table renders one row per second of playback with the worst frame delay
// observed in that second, plus distribution summaries.
func (r *Fig7Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 7: per-frame delay over time, one 1.5 Mb/s stream under disk load",
		"second", "CRAS max delay", "UFS max delay")
	bucketMax := func(s *metrics.Series, sec int) float64 {
		lo, hi := sim.Time(sec)*time.Second, sim.Time(sec+1)*time.Second
		var max float64
		for _, p := range s.Points {
			if p.T >= lo && p.T < hi && p.V > max {
				max = p.V
			}
		}
		return max
	}
	seconds := int(r.Config.Duration / time.Second)
	for sec := 0; sec <= seconds+2; sec++ {
		t.AddRow(sec,
			fmt.Sprintf("%.1f ms", 1000*bucketMax(&r.CRAS, sec)),
			fmt.Sprintf("%.1f ms", 1000*bucketMax(&r.UFS, sec)))
	}
	return t
}

// Summary returns both distributions for the shape check: UFS jitter must
// dwarf CRAS jitter at equal throughput.
func (r *Fig7Result) Summary() (cras, ufsSum metrics.Summary) {
	return r.CRAS.Summary(), r.UFS.Summary()
}
