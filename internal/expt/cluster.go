package expt

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClusterSweepConfig drives the sharding evaluation: the identical seeded
// Zipf-1.1 viewer script replayed against 1, 2 and 4 nodes, each node
// small enough that one alone saturates. The admitted-viewer growth across
// the rows is the cluster's doing — popularity-aware placement keeps the
// hot titles riding one node's fan-out and cache while the hash ring
// spreads the cold tail over the rest.
type ClusterSweepConfig struct {
	Seed       int64
	NodeCounts []int    // default {1, 2, 4}
	Movies     int      // catalog size; default 12
	Clients    int      // viewer population; default 40
	Duration   sim.Time // measured playback per viewer; default 12 s
	Spread     sim.Time // arrival spread; default 2 s
	Alpha      float64  // Zipf skew; default 1.1
	NodeRAM    int64    // per-node RAM; default 4 MB, sized so one node saturates
}

// ClusterPoint is one node-count's outcome under the shared script.
type ClusterPoint struct {
	Nodes          int `json:"nodes"`
	Admitted       int `json:"admitted"`
	Rejected       int `json:"rejected"`
	Shared         int `json:"shared"`          // opened onto a fan-out group or the interval cache
	PlacementOpens int `json:"placement_opens"` // routed to a node already playing the title
	RingOpens      int `json:"ring_opens"`      // routed by the consistent-hash ring
	SpillOpens     int `json:"spill_opens"`     // overflowed to the least-loaded node
	Lost           int `json:"lost"`            // frames lost across all admitted viewers
}

// ClusterSweepResult is the scaling comparison, snapshotted to
// BENCH_cluster.json by crasbench.
type ClusterSweepResult struct {
	Clients   int            `json:"clients"`
	Alpha     float64        `json:"alpha"`
	NodeRAMMB int64          `json:"node_ram_mb"`
	Points    []ClusterPoint `json:"points"`
}

// Point returns the row for the node count, or nil.
func (r *ClusterSweepResult) Point(nodes int) *ClusterPoint {
	for i := range r.Points {
		if r.Points[i].Nodes == nodes {
			return &r.Points[i]
		}
	}
	return nil
}

// RunClusterSweep replays the identical seeded viewer script at every node
// count.
func RunClusterSweep(cfg ClusterSweepConfig) *ClusterSweepResult {
	if len(cfg.NodeCounts) == 0 {
		cfg.NodeCounts = []int{1, 2, 4}
	}
	if cfg.Movies == 0 {
		cfg.Movies = 12
	}
	if cfg.Clients == 0 {
		cfg.Clients = 40
	}
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Second
	}
	if cfg.Spread == 0 {
		cfg.Spread = 2 * time.Second
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.1
	}
	if cfg.NodeRAM == 0 {
		cfg.NodeRAM = 4 << 20
	}
	res := &ClusterSweepResult{Clients: cfg.Clients, Alpha: cfg.Alpha, NodeRAMMB: cfg.NodeRAM >> 20}
	for _, n := range cfg.NodeCounts {
		res.Points = append(res.Points, runClusterPoint(cfg, n))
	}
	return res
}

func runClusterPoint(cfg ClusterSweepConfig, nodes int) ClusterPoint {
	prof := media.MPEG1()
	movieDur := cfg.Duration + cfg.Spread + 4*time.Second
	var movies []lab.Movie
	var paths []string
	for i := 0; i < cfg.Movies; i++ {
		path := fmt.Sprintf("/m%02d", i)
		movies = append(movies, lab.Movie{Path: path, Info: prof.Generate(path, movieDur)})
		paths = append(paths, path)
	}
	frames := int(cfg.Duration / (sim.Time(time.Second) / sim.Time(prof.FrameRate)))

	// Each node spends the same RAM the same way: half on stream buffers,
	// a quarter each on the interval cache and the fan-out/prefix pool, so
	// hot titles share capacity instead of burning buffer slots.
	ram := cfg.NodeRAM
	ccfg := cluster.Config{
		Nodes: nodes,
		Seed:  cfg.Seed,
		Node: lab.Setup{
			CRAS: core.Config{
				Interval:     500 * time.Millisecond,
				InitialDelay: 2 * time.Second,
				BufferBudget: ram / 2,
				CacheBudget:  ram / 4,
				BatchWindow:  time.Second,
				PrefixBudget: ram / 4,
			},
		},
		Movies: movies,
	}

	var outs []*workload.ClusterViewerOutcome
	var c *cluster.Cluster
	c = cluster.New(ccfg, func(c *cluster.Cluster) {
		outs = workload.LaunchClusterViewers(c, paths,
			c.Engine().RNG("cluster-sweep"), workload.ClusterViewerConfig{
				Clients: cfg.Clients, Alpha: cfg.Alpha,
				ArrivalSpread: cfg.Spread, MaxFrames: frames,
			})
	})
	horizon := cfg.Duration + cfg.Spread + 30*time.Second
	for ran := sim.Time(0); ran < horizon; ran += time.Second {
		c.Run(time.Second)
		done := true
		for _, o := range outs {
			if !o.Done {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	pt := ClusterPoint{Nodes: nodes}
	for _, o := range outs {
		if !o.Admitted {
			pt.Rejected++
			continue
		}
		pt.Admitted++
		if o.Shared {
			pt.Shared++
		}
		pt.Lost += o.Lost
	}
	st := c.Stats()
	pt.PlacementOpens = st.PlacementOpens
	pt.RingOpens = st.RingOpens
	pt.SpillOpens = st.SpillOpens
	return pt
}

// Table renders the sweep.
func (r *ClusterSweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Sharded cluster scaling: %d viewers, Zipf %.1f, %d MB per node",
			r.Clients, r.Alpha, r.NodeRAMMB),
		"nodes", "admitted", "rejected", "shared", "placement", "ring", "spill", "lost")
	for _, pt := range r.Points {
		t.AddRow(pt.Nodes, pt.Admitted, pt.Rejected, pt.Shared,
			pt.PlacementOpens, pt.RingOpens, pt.SpillOpens, pt.Lost)
	}
	return t
}
