package expt

import (
	"testing"
	"time"

	"repro/internal/media"
)

// Shape tests: small-scale versions of each figure that assert the
// qualitative results the paper reports (who wins, by roughly what factor,
// where behaviour changes), not absolute numbers.

func TestFig6Shape(t *testing.T) {
	res := RunFig6(Fig6Config{
		Seed:         1,
		StreamCounts: []int{1, 5, 9, 15, 20},
		Duration:     12 * time.Second,
	})
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		// CRAS is unaffected by background load (its reads preempt the
		// normal queue): the two CRAS curves stay within 15%.
		if p.CRASLoad < 0.85*p.CRASNoLoad {
			t.Errorf("N=%d: CRAS load %.0f << no-load %.0f", p.Streams, p.CRASLoad, p.CRASNoLoad)
		}
		// CRAS meets the offered load at least through mid counts.
		offered := float64(p.Streams) * 187500
		if p.Streams <= 15 && p.CRASNoLoad < 0.9*offered {
			t.Errorf("N=%d: CRAS delivered %.0f of offered %.0f", p.Streams, p.CRASNoLoad, offered)
		}
		// UFS under load collapses well below CRAS under load.
		if p.Streams >= 5 && p.UFSLoad > p.CRASLoad/2 {
			t.Errorf("N=%d: UFS under load %.0f not far below CRAS %.0f", p.Streams, p.UFSLoad, p.CRASLoad)
		}
		_ = i
	}
	// CRAS scales beyond UFS: at 15 streams UFS no-load has fallen behind.
	last := res.Points[3] // N=15
	if last.UFSNoLoad > 0.8*last.CRASNoLoad {
		t.Errorf("N=15: UFS %.0f should trail CRAS %.0f", last.UFSNoLoad, last.CRASNoLoad)
	}
	if f := res.PeakCRASFraction(); f < 0.35 || f > 0.95 {
		t.Errorf("peak CRAS fraction of disk = %.2f, expect mid-range", f)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFig6UFSCollapsesUnderLoadEarly(t *testing.T) {
	res := RunFig6(Fig6Config{
		Seed:         1,
		StreamCounts: []int{1, 2},
		Duration:     10 * time.Second,
	})
	// The paper: UFS "cannot support even one stream when other disk I/O
	// traffic is present" — on-time delivery under load collapses at the
	// smallest counts.
	if n := res.UFSCollapseUnderLoad(); n > 2 {
		t.Errorf("UFS under load survived to %d streams", n)
	}
}

// Ablation: the split real-time/normal driver queue is what isolates CRAS
// from queued non-real-time I/O. Against a backup scanner keeping the
// normal queue deep, removing the split collapses on-time delivery.
func TestAblationRTQueueShape(t *testing.T) {
	run := func(noRT bool) float64 {
		r := RunPlayback(PlaybackConfig{
			Seed: 1, Streams: 10, Profile: media.MPEG1(),
			Duration: 10 * time.Second, UseCRAS: true, Scanner: true, Force: true,
			NoRTQueue: noRT,
		})
		return r.OnTimeThroughput()
	}
	with := run(false)
	without := run(true)
	if with < 1.8e6 {
		t.Errorf("with RT queue: %.2f MB/s, scanner should not hurt CRAS", with/1e6)
	}
	if without > 0.65*with {
		t.Errorf("without RT queue: %.2f MB/s vs %.2f with; queue split not load-bearing", without/1e6, with/1e6)
	}
}

func TestFig7Shape(t *testing.T) {
	res := RunFig7(Fig7Config{Seed: 1, Duration: 12 * time.Second})
	cras, ufsS := res.Summary()
	if cras.N == 0 || ufsS.N == 0 {
		t.Fatal("missing samples")
	}
	// UFS delay jitter dwarfs CRAS's at the same (single-stream) load.
	if ufsS.Max < 3*cras.Max {
		t.Errorf("UFS max %.4fs vs CRAS max %.4fs: expected a wide gap", ufsS.Max, cras.Max)
	}
	if ufsS.Std < 2*cras.Std {
		t.Errorf("UFS jitter std %.4fs vs CRAS %.4fs", ufsS.Std, cras.Std)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := Fig8Config()
	cfg.Seed = 1
	cfg.StreamCounts = []int{1, 4, 10}
	cfg.Duration = 10 * time.Second
	res := RunAccuracy(cfg)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// The estimate is a bound: the ratio never exceeds 100% without
		// load, and stays modest at low rates (very pessimistic).
		if p.NoLoadMax > 100 {
			t.Errorf("N=%d: actual exceeded calculated (%.0f%%)", p.Streams, p.NoLoadMax)
		}
		if p.NoLoadAvg <= 0 {
			t.Errorf("N=%d: no samples", p.Streams)
		}
	}
	// Accuracy improves (ratio rises) with more streams: transfer time
	// starts to dominate the pessimistic overhead terms.
	if res.Points[2].NoLoadAvg <= res.Points[0].NoLoadAvg {
		t.Errorf("accuracy did not improve with stream count: %v", res.Points)
	}
	// Low-rate streams at N=1 are very pessimistic (paper: far below 50%).
	if res.Points[0].NoLoadAvg > 50 {
		t.Errorf("N=1 accuracy %.0f%%, expected heavy pessimism", res.Points[0].NoLoadAvg)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := Fig9Config()
	cfg.Seed = 1
	cfg.StreamCounts = []int{1, 5}
	cfg.Duration = 10 * time.Second
	res := RunAccuracy(cfg)
	fig8 := RunAccuracy(AccuracyConfig{
		Seed: 1, Profile: media.MPEG1(), StreamCounts: []int{1},
		Duration: 10 * time.Second, Label: "fig8-ref",
	})
	// Higher data rates are less pessimistic than low rates at equal N.
	if res.Points[0].NoLoadAvg <= fig8.Points[0].NoLoadAvg {
		t.Errorf("6 Mb/s accuracy %.0f%% should exceed 1.5 Mb/s %.0f%%",
			res.Points[0].NoLoadAvg, fig8.Points[0].NoLoadAvg)
	}
	// With load, the actual I/O time grows (background request in the
	// way), moving the ratio toward the estimate.
	if res.Points[1].LoadAvg <= res.Points[1].NoLoadAvg {
		t.Errorf("load should raise the ratio: load %.0f%% vs no-load %.0f%%",
			res.Points[1].LoadAvg, res.Points[1].NoLoadAvg)
	}
	if res.Points[1].LoadMax > 100.0 {
		t.Errorf("even under load the bound should hold, got %.0f%%", res.Points[1].LoadMax)
	}
}

func TestFig10Shape(t *testing.T) {
	res := RunFig10(Fig10Config{Seed: 1, Duration: 10 * time.Second})
	fp, rr := res.FixedPriority.Summary(), res.RoundRobin.Summary()
	if fp.N == 0 {
		t.Fatal("no fixed-priority samples")
	}
	// Fixed priority keeps the stream essentially unperturbed by CPU load;
	// round robin produces delays orders of magnitude larger (and may lose
	// frames outright).
	if fp.Max > 0.05 {
		t.Errorf("fixed-priority max delay %.3fs, want tiny", fp.Max)
	}
	if rr.N > 0 && rr.Max < 5*fp.Max {
		t.Errorf("round-robin max %.4fs vs fixed-priority %.4fs: expected a wide gap", rr.Max, fp.Max)
	}
	if rr.N == 0 && res.RRLost == 0 {
		t.Error("round robin neither delivered nor lost frames")
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFig12Shape(t *testing.T) {
	res := RunFig12(1)
	if len(res.Points) < 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Monotonic measured curve; approximation within 3 ms everywhere.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Measured < res.Points[i-1].Measured {
			t.Errorf("seek curve not monotonic at %d", res.Points[i].Distance)
		}
	}
	for _, p := range res.Points {
		diff := p.Measured - p.Approx
		if diff < 0 {
			diff = -diff
		}
		if diff > 3*time.Millisecond {
			t.Errorf("fit off by %v at distance %d", diff, p.Distance)
		}
	}
	if res.TseekMin < 2*time.Millisecond || res.TseekMin > 6*time.Millisecond {
		t.Errorf("Tseek_min = %v, paper ~4ms", res.TseekMin)
	}
	if res.TseekMax < 15*time.Millisecond || res.TseekMax > 19*time.Millisecond {
		t.Errorf("Tseek_max = %v, paper ~17ms", res.TseekMax)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestTable4Shape(t *testing.T) {
	res := RunTable4(1)
	if res.D < 6.3e6 || res.D > 6.7e6 {
		t.Errorf("D = %.2f MB/s, paper 6.5", res.D/1e6)
	}
	if res.MeasuredD < 6.0e6 || res.MeasuredD > 7.0e6 {
		t.Errorf("timed D = %.2f MB/s", res.MeasuredD/1e6)
	}
	if res.Trot != 8330*time.Microsecond || res.Tcmd != 2*time.Millisecond {
		t.Errorf("Trot/Tcmd = %v/%v", res.Trot, res.Tcmd)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestDelaySweepShape(t *testing.T) {
	res := RunDelaySweep(1, 22, 15*time.Second,
		[]time.Duration{time.Second, 3 * time.Second})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// A longer initial delay never hurts and should help at this load.
	if res.Points[1].Throughput < res.Points[0].Throughput {
		t.Errorf("3s delay %.0f below 1s delay %.0f", res.Points[1].Throughput, res.Points[0].Throughput)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestIntervalSweepShape(t *testing.T) {
	res := RunIntervalSweep(1,
		[]time.Duration{250 * time.Millisecond, time.Second},
		6*time.Second)
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Longer intervals admit more streams at more memory and delay.
	a, b := res.Points[0], res.Points[1]
	if b.AdmittedMax <= a.AdmittedMax {
		t.Errorf("capacity did not grow with T: %d -> %d", a.AdmittedMax, b.AdmittedMax)
	}
	if b.BufferNeeded <= a.BufferNeeded {
		t.Errorf("memory did not grow with T: %d -> %d", a.BufferNeeded, b.BufferNeeded)
	}
	if a.MinDelay != 500*time.Millisecond || b.MinDelay != 2*time.Second {
		t.Errorf("min delays = %v, %v", a.MinDelay, b.MinDelay)
	}
	// At the short interval, the admitted set plays cleanly.
	if a.VerifiedLost > 0 {
		t.Errorf("T=250ms capacity run lost %d frames", a.VerifiedLost)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestVBRShape(t *testing.T) {
	res := RunVBR(1, 10*time.Second)
	if res.WorstRate <= 1.1*res.AvgRate {
		t.Errorf("VBR worst %.0f should clearly exceed avg %.0f", res.WorstRate, res.AvgRate)
	}
	if res.Capacity == 0 || res.PeakUsed == 0 {
		t.Fatalf("missing buffer measurements: %+v", res)
	}
	// The Section 3.2 point: the worst-case-sized buffer is underused.
	if res.Utilization > 0.95 {
		t.Errorf("utilization %.2f, expected waste", res.Utilization)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFragmentationShape(t *testing.T) {
	res := RunFragmentation(1, 6, 10*time.Second)
	if res.FragAvgExtent >= res.TunedAvgExtent/4 {
		t.Errorf("fragmented avg extent %d vs tuned %d: expected much smaller",
			res.FragAvgExtent, res.TunedAvgExtent)
	}
	if res.FragReads <= res.TunedReads {
		t.Error("fragmented layout should need more reads")
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestRecordShape(t *testing.T) {
	res := RunRecord(1, 3, 10*time.Second)
	if res.WrittenBytes < res.PlannedBytes*9/10 {
		t.Errorf("wrote %d of %d planned bytes", res.WrittenBytes, res.PlannedBytes)
	}
	if res.IODeadlineMiss != 0 {
		t.Errorf("%d I/O deadline misses while recording", res.IODeadlineMiss)
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestOverloadSweepShape(t *testing.T) {
	res := RunOverloadSweep(OverloadSweepConfig{Seed: 1, Duration: 8 * time.Second, Rates: []float64{4, 64}})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	calm, storm := res.Points[0], res.Points[1]
	if storm.ShedRate() <= calm.ShedRate() {
		t.Errorf("shed rate did not rise with arrival rate: %.2f -> %.2f",
			calm.ShedRate(), storm.ShedRate())
	}
	if storm.RequestsShed == 0 {
		t.Error("no requests shed at 64 opens/s against budget 8")
	}
	// The whole point: the admitted viewers never pay for the flood.
	for _, pt := range res.Points {
		if pt.ViewerLost != 0 {
			t.Errorf("viewers lost %d frames at %v opens/s", pt.ViewerLost, pt.Rate)
		}
	}
	if res.Table().String() == "" {
		t.Error("empty table")
	}
}
