// Package expt regenerates every experimental table and figure in the
// paper's evaluation (Section 3): the CRAS-vs-UFS throughput and delay
// comparisons (Figures 6 and 7), the admission-test accuracy studies
// (Figures 8 and 9), the scheduling-policy comparison (Figure 10), the
// disk seek-curve measurement (Figure 12 and Table 4), plus the Section
// 3.2 problem demonstrations (VBR buffer waste, fragmentation from
// editing) and the Conclusions' constant-rate recording extension.
//
// Each runner builds a fresh simulated machine via internal/lab, drives a
// workload, and returns a structured result with a Table renderer, so
// cmd/crasbench can print the same rows the paper plots.
package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/workload"
)

// Policy selects the kernel scheduling configuration.
type Policy int

const (
	// FixedPriority is Real-Time Mach's normal mode: CRAS threads in the
	// real-time band, applications below them, timesharing at the bottom.
	FixedPriority Policy = iota
	// RoundRobin flattens every thread to one priority with a 10 ms
	// quantum — the degraded configuration of Figure 10.
	RoundRobin
)

// rrQuantum is the timesharing quantum for the round-robin configuration —
// 100 ms, the classic Mach/Unix timesharing default. With three CPU-bound
// competitors, a round-robin thread waits up to 300 ms per dispatch, which
// is the delay explosion Figure 10 plots.
const rrQuantum = 100 * time.Millisecond

// PlaybackConfig drives one playback run.
type PlaybackConfig struct {
	Seed         int64
	Streams      int
	Profile      media.CBRProfile
	Duration     sim.Time // measured playback per stream
	Interval     sim.Time // CRAS T; default 500 ms
	InitialDelay sim.Time // default 2*Interval
	UseCRAS      bool
	Load         bool // two background cat readers on the same disk
	Scanner      bool // a raw backup scanner keeping the normal queue deep
	Hogs         int  // CPU-bound competitors
	Policy       Policy
	Force        bool // bypass admission (throughput sweeps)
	FSOpts       ufs.Options

	// PlayerFrameCPU charges the player a per-frame CPU cost (decode and
	// display work). Figure 10 sets it: dispatch latency is what the
	// scheduling policies differ in, and a thread that never computes
	// never waits.
	PlayerFrameCPU sim.Time

	// Ablation switches.
	NoRTQueue bool // CRAS reads on the normal disk queue
	FIFODisk  bool // arrival-order disk service instead of C-SCAN
	MaxRead   int  // override the 256 KB single-read cap

	// Faults, when non-nil, installs a deterministic disk fault model for
	// the whole run. Set RTOnly to keep file-system setup traffic clean.
	Faults *disk.FaultConfig

	// Recovery overrides the server's recovery policy (zero = defaults).
	Recovery core.RecoveryPolicy
}

// PlaybackResult is what one run produced.
type PlaybackResult struct {
	Players    []*workload.PlayerStats
	CRASStats  core.Stats
	DiskStats  disk.Stats
	FaultStats disk.FaultStats // zero unless PlaybackConfig.Faults was set
	MediaRate  float64         // the disk's sustained rate, for normalizing

	admissionRejected int
}

// TotalThroughput sums delivered bytes/second across players.
func (r *PlaybackResult) TotalThroughput() float64 {
	var sum float64
	for _, p := range r.Players {
		sum += p.Throughput()
	}
	return sum
}

// OnTimeThroughput sums on-time bytes/second across players.
func (r *PlaybackResult) OnTimeThroughput() float64 {
	var sum float64
	for _, p := range r.Players {
		sum += p.OnTimeThroughput()
	}
	return sum
}

// LostFrames sums frames never delivered.
func (r *PlaybackResult) LostFrames() int {
	n := 0
	for _, p := range r.Players {
		n += p.Lost
	}
	return n
}

// RunPlayback builds a machine with one movie per stream (plus a bulk file
// for the background readers) and plays all streams simultaneously.
func RunPlayback(cfg PlaybackConfig) *PlaybackResult {
	if cfg.Interval == 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.InitialDelay == 0 {
		cfg.InitialDelay = 2 * cfg.Interval
	}

	movieDur := cfg.Duration + cfg.InitialDelay + time.Second
	var movies []lab.Movie
	infos := make([]*media.StreamInfo, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		path := fmt.Sprintf("/m%02d", i)
		infos[i] = cfg.Profile.Generate(path, movieDur)
		movies = append(movies, lab.Movie{Path: path, Info: infos[i]})
	}
	bulk := media.CBRProfile{FrameRate: 30, Rate: 1e6}.Generate("/bulk", 20*time.Second)
	movies = append(movies, lab.Movie{Path: "/bulk", Info: bulk})

	crasCfg := core.Config{
		Interval:     cfg.Interval,
		InitialDelay: cfg.InitialDelay,
		BufferBudget: 64 << 20,
		NoRTQueue:    cfg.NoRTQueue,
		MaxRead:      cfg.MaxRead,
		Recovery:     cfg.Recovery,
	}
	setup := lab.Setup{
		Seed:   cfg.Seed,
		FSOpts: cfg.FSOpts,
		CRAS:   crasCfg,
		NoCRAS: !cfg.UseCRAS,
		Movies: movies,
	}
	playerCfg := workload.PlayerConfig{Priority: rtm.PrioRTLow}
	catPrio, hogPrio := rtm.PrioTS, rtm.PrioTS
	if cfg.Policy == RoundRobin {
		q := sim.Time(rrQuantum)
		setup.UnixQuantum = q
		setup.UnixPrio = rtm.PrioTS
		setup.CRAS.Quantum = q
		setup.CRAS.SchedulerPrio = rtm.PrioTS
		setup.CRAS.ManagerPrio = rtm.PrioTS
		setup.CRAS.IODonePrio = rtm.PrioTS
		setup.CRAS.DeadlinePrio = rtm.PrioTS
		setup.CRAS.SignalPrio = rtm.PrioTS
		playerCfg = workload.PlayerConfig{Priority: rtm.PrioTS, Quantum: q}
	}

	res := &PlaybackResult{Players: make([]*workload.PlayerStats, cfg.Streams)}
	for i := range res.Players {
		res.Players[i] = &workload.PlayerStats{}
	}

	frames := int(cfg.Duration / (sim.Time(time.Second) / sim.Time(cfg.Profile.FrameRate)))
	var model *disk.FaultModel
	m := lab.Build(setup, func(m *lab.Machine) {
		if cfg.FIFODisk {
			m.Disk.SetFIFO(true)
		}
		if cfg.Faults != nil {
			model = disk.NewFaultModel(m.Eng.RNG("expt:faults"), *cfg.Faults)
			m.Disk.SetFaultModel(model)
		}
		if cfg.Load {
			q := sim.Time(0)
			if cfg.Policy == RoundRobin {
				q = rrQuantum
			}
			workload.BackgroundReader(m.Kernel, m.Unix, "/bulk", catPrio, q)
			workload.BackgroundReader(m.Kernel, m.Unix, "/bulk", catPrio, q)
		}
		if cfg.Scanner {
			workload.RawScanner(m.Kernel, m.Disk, "backup", 64<<10, 8)
		}
		for i := 0; i < cfg.Hogs; i++ {
			q := sim.Time(0)
			if cfg.Policy == RoundRobin {
				q = rrQuantum
			}
			workload.CPUHog(m.Kernel, fmt.Sprintf("hog%d", i), hogPrio, q, 0)
		}
		pc := playerCfg
		pc.MaxFrames = frames
		pc.FrameCPU = cfg.PlayerFrameCPU
		for i := 0; i < cfg.Streams; i++ {
			path := fmt.Sprintf("/m%02d", i)
			if cfg.UseCRAS {
				workload.CRASPlayer(m.Kernel, m.CRAS, infos[i], path,
					core.OpenOptions{Force: cfg.Force}, pc, res.Players[i])
			} else {
				workload.UFSPlayer(m.Kernel, m.Unix, infos[i], path,
					cfg.InitialDelay, pc, res.Players[i])
			}
		}
	})
	// Run until every player finishes or a generous horizon passes (UFS
	// under heavy load can take far longer than the nominal duration).
	horizon := 4*cfg.Duration + 30*time.Second
	step := time.Second
	for ran := sim.Time(0); ran < horizon; ran += step {
		m.Run(step)
		done := true
		for _, p := range res.Players {
			if !p.Done {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if err := m.Err(); err != nil {
		panic(err)
	}
	if cfg.UseCRAS {
		res.CRASStats = m.CRAS.Stats()
	}
	res.DiskStats = m.Disk.Stats()
	if model != nil {
		res.FaultStats = model.Stats()
	}
	res.MediaRate = disk.MediaRate(m.Disk.Geometry(), m.Disk.Params())
	return res
}
