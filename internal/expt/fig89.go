package expt

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// AccuracyConfig parameterizes the admission-test accuracy studies of
// Figures 8 (1.5 Mb/s streams) and 9 (6 Mb/s streams): the ratio of the
// actual per-interval disk I/O time to the admission test's calculated
// time, averaged and maximized over a run, with and without background
// disk activity.
type AccuracyConfig struct {
	Seed         int64
	Profile      media.CBRProfile
	StreamCounts []int
	Duration     sim.Time
	Label        string
}

// Fig8Config returns the 1.5 Mb/s (MPEG1) configuration.
func Fig8Config() AccuracyConfig {
	return AccuracyConfig{
		Profile:      media.MPEG1(),
		StreamCounts: []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		Label:        "Figure 8: admission accuracy, 1.5 Mb/s streams",
	}
}

// Fig9Config returns the 6 Mb/s (MPEG2) configuration.
func Fig9Config() AccuracyConfig {
	return AccuracyConfig{
		Profile:      media.MPEG2(),
		StreamCounts: []int{1, 2, 3, 4, 5},
		Label:        "Figure 9: admission accuracy, 6 Mb/s streams",
	}
}

// AccuracyPoint is one stream count's measured ratios, in percent.
type AccuracyPoint struct {
	Streams              int
	NoLoadAvg, NoLoadMax float64
	LoadAvg, LoadMax     float64
	Intervals            int
}

// AccuracyResult is one figure's data.
type AccuracyResult struct {
	Config AccuracyConfig
	Points []AccuracyPoint
}

// RunAccuracy regenerates Figure 8 or 9 depending on the configuration.
func RunAccuracy(cfg AccuracyConfig) *AccuracyResult {
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Second
	}
	res := &AccuracyResult{Config: cfg}
	for _, n := range cfg.StreamCounts {
		pt := AccuracyPoint{Streams: n}
		for _, load := range []bool{false, true} {
			r := RunPlayback(PlaybackConfig{
				Seed: cfg.Seed, Streams: n, Profile: cfg.Profile,
				Duration: cfg.Duration, UseCRAS: true, Load: load, Force: true,
			})
			avg, max := summarizeAccuracy(r)
			if load {
				pt.LoadAvg, pt.LoadMax = avg, max
			} else {
				pt.NoLoadAvg, pt.NoLoadMax = avg, max
				pt.Intervals = len(r.CRASStats.Accuracy)
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// summarizeAccuracy averages the per-interval ratios, excluding warmup
// intervals (streams still opening, pipeline prefilling) so the numbers
// describe steady state, as the paper's do.
func summarizeAccuracy(r *PlaybackResult) (avg, max float64) {
	recs := r.CRASStats.Accuracy
	full := 0
	for _, rec := range recs {
		if rec.Streams > full {
			full = rec.Streams
		}
	}
	var sum float64
	n := 0
	for _, rec := range recs {
		if rec.Cycle < 4 || rec.Streams < full {
			continue
		}
		ratio := rec.Ratio()
		sum += ratio
		n++
		if ratio > max {
			max = ratio
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), max
}

// Table renders the figure: ratio of actual to calculated I/O time in
// percent; 100% means the estimate was exact, lower is more pessimistic.
func (r *AccuracyResult) Table() *metrics.Table {
	t := metrics.NewTable(r.Config.Label+" (actual/calculated disk time, %)",
		"streams", "no-load avg", "no-load max", "load avg", "load max", "intervals")
	for _, p := range r.Points {
		t.AddRow(p.Streams,
			fmt.Sprintf("%.0f%%", p.NoLoadAvg), fmt.Sprintf("%.0f%%", p.NoLoadMax),
			fmt.Sprintf("%.0f%%", p.LoadAvg), fmt.Sprintf("%.0f%%", p.LoadMax),
			p.Intervals)
	}
	return t
}
