package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// StripeSweepConfig parameterizes the striped-volume capacity sweep.
type StripeSweepConfig struct {
	Seed          int64
	Duration      sim.Time // playback window per point; 0 = 12 s
	DiskCounts    []int    // member counts to sweep; nil = {1, 2, 4, 8}
	StripeSectors int64    // stripe unit; 0 = the lab default (64 sectors)
}

// StripePoint is one member count's outcome: how many streams the per-disk
// admission test accepted, and how hard each member actually worked while
// they all played.
type StripePoint struct {
	Disks    int
	Admitted int
	Util     []float64 // per-member BusyTime fraction of the playback window
	IOMisses int
}

// StripeSweepResult backs the striping extension: admitted capacity and
// per-member utilization versus member count, everything else held fixed.
type StripeSweepResult struct {
	StripeSectors int64
	Rate          float64 // per-stream bytes/s
	Points        []StripePoint
}

// RunStripeSweep opens identical MPEG2-class streams until admission
// refuses one, then plays the admitted set for the configured window and
// samples each member disk's busy time. The per-disk admission test is the
// capacity limiter: the interval cache is off, control-plane shedding is
// disabled, and the buffer budget is set high enough that disk time — not
// RAM — binds.
func RunStripeSweep(cfg StripeSweepConfig) *StripeSweepResult {
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Second
	}
	if len(cfg.DiskCounts) == 0 {
		cfg.DiskCounts = []int{1, 2, 4, 8}
	}
	profile := media.MPEG2()
	info := profile.Generate("/movie", cfg.Duration+8*time.Second)
	res := &StripeSweepResult{Rate: profile.Rate}

	for _, n := range cfg.DiskCounts {
		pt := StripePoint{Disks: n}
		m := lab.Build(lab.Setup{
			Seed:          cfg.Seed,
			Disks:         n,
			StripeSectors: cfg.StripeSectors,
			Movies:        []lab.Movie{{Path: "/movie", Info: info}},
			CRAS: core.Config{
				BufferBudget:        512 << 20,
				MaxRequestsPerCycle: -1,
			},
		}, func(m *lab.Machine) {
			m.App("sweep", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
				var handles []*core.Handle
				for len(handles) < 200 {
					h, err := m.CRAS.Open(th, info, "/movie", core.OpenOptions{})
					if err != nil {
						break
					}
					handles = append(handles, h)
				}
				pt.Admitted = len(handles)
				for _, h := range handles {
					h.Start(th)
				}
				busy0 := make([]sim.Time, m.Vol.NumDisks())
				for d := range busy0 {
					busy0[d] = m.Vol.Disk(d).Stats().BusyTime
				}
				start := m.Kernel.Now()
				for m.Kernel.Now() < start+cfg.Duration {
					th.Sleep(time.Second)
					for _, h := range handles {
						h.Renew(th)
					}
				}
				window := m.Kernel.Now() - start
				pt.Util = make([]float64, m.Vol.NumDisks())
				for d := range pt.Util {
					busy := m.Vol.Disk(d).Stats().BusyTime - busy0[d]
					pt.Util[d] = busy.Seconds() / window.Seconds()
				}
				pt.IOMisses = m.CRAS.Stats().IODeadlineMiss
				for _, h := range handles {
					h.Close(th)
				}
			})
		})
		m.Run(cfg.Duration + 20*time.Second)
		if res.StripeSectors == 0 {
			res.StripeSectors = m.Vol.StripeSectors()
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the sweep: one row per member count, utilization as
// min–max across members (even numbers mean the stripe is spreading load).
func (r *StripeSweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Striped-volume capacity (stripe %d sectors, %s streams)",
			r.StripeSectors, metrics.MBps(r.Rate)),
		"disks", "admitted", "member util min", "member util max", "I/O misses")
	for _, p := range r.Points {
		lo, hi := 1.0, 0.0
		for _, u := range p.Util {
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if len(p.Util) == 0 {
			lo = 0
		}
		t.AddRow(p.Disks, p.Admitted,
			fmt.Sprintf("%.0f%%", 100*lo), fmt.Sprintf("%.0f%%", 100*hi), p.IOMisses)
	}
	return t
}
