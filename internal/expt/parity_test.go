package expt

import (
	"testing"
	"time"
)

// TestParitySweepShape pins the capacity accounting the disk-death
// extension promises: redundancy is not free but costs at most 25% of the
// RAID-0 capacity at equal member count, a degraded volume admits no more
// than a healthy one, and only the degraded point reconstructs.
func TestParitySweepShape(t *testing.T) {
	res := RunParitySweep(ParitySweepConfig{Seed: 1, Duration: 6 * time.Second})
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4 (single, raid0, parity, degraded)", len(res.Points))
	}
	byMode := map[string]ParityPoint{}
	for _, p := range res.Points {
		byMode[p.Mode] = p
	}
	raid0, parity, degraded := byMode["raid0"], byMode["parity"], byMode["degraded"]
	if parity.Admitted < 1 || raid0.Admitted < 1 {
		t.Fatalf("sweep admitted nothing: raid0=%d parity=%d", raid0.Admitted, parity.Admitted)
	}
	if 4*parity.Admitted < 3*raid0.Admitted {
		t.Errorf("healthy parity admits %d streams, more than 25%% below RAID-0's %d",
			parity.Admitted, raid0.Admitted)
	}
	if parity.Admitted > raid0.Admitted {
		t.Errorf("parity admits %d > RAID-0's %d — the rotation came out free", parity.Admitted, raid0.Admitted)
	}
	if degraded.Admitted > parity.Admitted {
		t.Errorf("degraded admits %d > healthy %d", degraded.Admitted, parity.Admitted)
	}
	if degraded.DegradedReads == 0 || degraded.Reconstructions == 0 {
		t.Errorf("degraded point served no reconstructed reads: %+v", degraded)
	}
	if parity.DegradedReads != 0 {
		t.Errorf("healthy parity point reconstructed: %+v", parity)
	}
	if degraded.Util[1] != 0 {
		t.Errorf("dead member 1 shows utilization %.2f", degraded.Util[1])
	}
	if degraded.IOMisses > 2*parity.Admitted {
		t.Errorf("degraded point missed %d I/O deadlines for %d streams", degraded.IOMisses, degraded.Admitted)
	}
}
