package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MulticastSweepConfig drives the batching + prefix evaluation: one
// premiere-style wave population (internal/workload batched arrivals)
// replayed against three ways of spending the same RAM — all of it on
// stream buffers, most of it on the interval cache (PR 3's best split),
// and a three-way split that funds the multicast fan-out and pinned
// prefixes. The arrival script is byte-identical across the modes, so the
// admitted-viewer differences are the memory hierarchy's doing.
type MulticastSweepConfig struct {
	Seed       int64
	Movies     int      // catalog size; default 12
	Clients    int      // viewer population; default 60
	Duration   sim.Time // measured playback per viewer; default 18 s
	Waves      int      // arrival bursts; default 3
	WaveGap    sim.Time // between wave starts; default 4 s
	WaveSpread sim.Time // arrivals inside a wave; default 1.5 s
	TotalRAM   int64    // split across buffer/cache/prefix; default 48 MB
	Alpha      float64  // Zipf skew; default 1.1
}

// MulticastPoint is one memory-split's outcome under the shared script.
type MulticastPoint struct {
	Mode         string  `json:"mode"` // disk | cache | multicast
	BufferMB     int64   `json:"buffer_mb"`
	CacheMB      int64   `json:"cache_mb"`
	PrefixMB     int64   `json:"prefix_mb"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	CacheBacked  int     `json:"cache_backed"`  // opened as interval-cache followers
	Members      int     `json:"members"`       // opened as fan-out members
	PrefixStarts int     `json:"prefix_starts"` // members whose head came from pins
	Groups       int     `json:"groups"`        // multicast groups formed
	FanoutChunks int64   `json:"fanout_chunks"` // chunks copied feed -> members
	Fallbacks    int     `json:"fallbacks"`     // members converted back to disk
	BytesReadMB  int64   `json:"bytes_read_mb"` // CRAS disk traffic
	DiskUtil     float64 `json:"disk_util"`
	Lost         int     `json:"lost"` // frames lost across all admitted viewers
}

// MulticastSweepResult is the three-row comparison, snapshotted to
// BENCH_multicast.json by crasbench.
type MulticastSweepResult struct {
	Clients int              `json:"clients"`
	Alpha   float64          `json:"alpha"`
	RAMMB   int64            `json:"ram_mb"`
	Points  []MulticastPoint `json:"points"`
}

// Point returns the row for the mode, or nil.
func (r *MulticastSweepResult) Point(mode string) *MulticastPoint {
	for i := range r.Points {
		if r.Points[i].Mode == mode {
			return &r.Points[i]
		}
	}
	return nil
}

// RunMulticastSweep replays the identical seeded wave script at every
// memory split.
func RunMulticastSweep(cfg MulticastSweepConfig) *MulticastSweepResult {
	if cfg.Movies == 0 {
		cfg.Movies = 12
	}
	if cfg.Clients == 0 {
		cfg.Clients = 60
	}
	if cfg.Duration == 0 {
		cfg.Duration = 18 * time.Second
	}
	if cfg.Waves == 0 {
		cfg.Waves = 3
	}
	if cfg.WaveGap == 0 {
		cfg.WaveGap = 4 * time.Second
	}
	if cfg.WaveSpread == 0 {
		cfg.WaveSpread = 1500 * time.Millisecond
	}
	if cfg.TotalRAM == 0 {
		cfg.TotalRAM = 48 << 20
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.1
	}

	res := &MulticastSweepResult{Clients: cfg.Clients, Alpha: cfg.Alpha, RAMMB: cfg.TotalRAM >> 20}
	ram := cfg.TotalRAM
	for _, split := range []struct {
		mode                  string
		buffer, cache, prefix int64
	}{
		// Disk-only: the paper's server, every byte a stream buffer.
		{"disk", ram, 0, 0},
		// Cache-only: PR 3's best interval-cache split of the same RAM.
		{"cache", ram - ram*2/3, ram * 2 / 3, 0},
		// Multicast: fund fan-out buffers and pinned prefixes too.
		{"multicast", ram / 4, ram / 4, ram / 2},
	} {
		res.Points = append(res.Points, runMulticastPoint(cfg, split.mode, split.buffer, split.cache, split.prefix))
	}
	return res
}

func runMulticastPoint(cfg MulticastSweepConfig, mode string, buffer, cache, prefix int64) MulticastPoint {
	prof := media.MPEG1()
	span := sim.Time(cfg.Waves-1)*cfg.WaveGap + cfg.WaveSpread
	movieDur := cfg.Duration + span + 2*time.Second
	var movies []lab.Movie
	var infos []*media.StreamInfo
	var paths []string
	for i := 0; i < cfg.Movies; i++ {
		path := fmt.Sprintf("/m%02d", i)
		info := prof.Generate(path, movieDur)
		movies = append(movies, lab.Movie{Path: path, Info: info})
		infos = append(infos, info)
		paths = append(paths, path)
	}

	frames := int(cfg.Duration / (sim.Time(time.Second) / sim.Time(prof.FrameRate)))
	var outs []*workload.ViewerOutcome
	var busy0 sim.Time
	var start sim.Time
	m := lab.Build(lab.Setup{
		Seed: cfg.Seed,
		CRAS: core.Config{
			BufferBudget: buffer,
			CacheBudget:  cache,
			PrefixBudget: prefix,
			BatchWindow:  2 * time.Second,
		},
		Movies: movies,
	}, func(m *lab.Machine) {
		start = m.Eng.Now()
		busy0 = m.Disk.Stats().BusyTime // setup I/O is not the sweep's traffic
		outs = workload.LaunchBatchedViewers(m.Kernel, m.CRAS, infos, paths,
			m.Eng.RNG("multicast-sweep"), workload.BatchedViewerConfig{
				Clients: cfg.Clients, Alpha: cfg.Alpha,
				Waves: cfg.Waves, WaveGap: cfg.WaveGap, WaveSpread: cfg.WaveSpread,
				Player: workload.PlayerConfig{MaxFrames: frames},
			})
	})
	horizon := 2*cfg.Duration + span + 30*time.Second
	for ran := sim.Time(0); ran < horizon; ran += time.Second {
		m.Run(time.Second)
		done := true
		for _, o := range outs {
			if !o.Stats.Done {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if err := m.Err(); err != nil {
		panic(err)
	}

	pt := MulticastPoint{Mode: mode, BufferMB: buffer >> 20, CacheMB: cache >> 20, PrefixMB: prefix >> 20}
	for _, o := range outs {
		if !o.Admitted {
			pt.Rejected++
			continue
		}
		pt.Admitted++
		if o.CacheBacked {
			pt.CacheBacked++
		}
		if o.Multicast {
			pt.Members++
		}
		if o.PrefixStart {
			pt.PrefixStarts++
		}
		pt.Lost += o.Stats.Lost
	}
	st := m.CRAS.Stats()
	pt.Groups = st.MulticastGroups
	pt.FanoutChunks = st.MulticastFanout
	pt.Fallbacks = st.MulticastFallbacks
	pt.BytesReadMB = st.BytesRead >> 20
	if elapsed := m.Eng.Now() - start; elapsed > 0 {
		pt.DiskUtil = float64(m.Disk.Stats().BusyTime-busy0) / float64(elapsed)
	}
	return pt
}

// Table renders the sweep.
func (r *MulticastSweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Multicast batching + pinned prefix: %d viewers, Zipf %.1f, %d MB RAM",
			r.Clients, r.Alpha, r.RAMMB),
		"mode", "buf/cache/prefix MB", "admitted", "rejected", "cache-backed",
		"members", "prefix-starts", "groups", "fanout chunks", "fallbacks", "disk MB", "disk util", "lost")
	for _, pt := range r.Points {
		t.AddRow(
			pt.Mode,
			fmt.Sprintf("%d/%d/%d", pt.BufferMB, pt.CacheMB, pt.PrefixMB),
			pt.Admitted, pt.Rejected, pt.CacheBacked,
			pt.Members, pt.PrefixStarts, pt.Groups, pt.FanoutChunks, pt.Fallbacks,
			pt.BytesReadMB,
			fmt.Sprintf("%.0f%%", 100*pt.DiskUtil),
			pt.Lost,
		)
	}
	return t
}
