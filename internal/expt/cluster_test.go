package expt

import (
	"testing"
	"time"
)

// The ISSUE's acceptance criterion for the sharded cluster, as a
// regression test: under the identical seeded Zipf-1.1 viewer script, the
// admitted population must grow 1 → 2 → 4 nodes (one node alone
// saturates), with the placement ladder visibly riding shared capacity and
// nothing lost in a quiet cluster.
func TestClusterSweepScalesAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster sweep")
	}
	res := RunClusterSweep(ClusterSweepConfig{Seed: 1, Duration: 8 * time.Second})
	p1, p2, p4 := res.Point(1), res.Point(2), res.Point(4)
	if p1 == nil || p2 == nil || p4 == nil {
		t.Fatalf("sweep missing points: %+v", res.Points)
	}
	for _, p := range res.Points {
		t.Logf("%d node(s): %+v", p.Nodes, p)
	}
	if p1.Rejected == 0 {
		t.Error("one node rejected nobody — the sweep no longer saturates a single node")
	}
	if !(p1.Admitted < p2.Admitted && p2.Admitted < p4.Admitted) {
		t.Errorf("admission does not scale with nodes: %d -> %d -> %d",
			p1.Admitted, p2.Admitted, p4.Admitted)
	}
	for _, p := range res.Points {
		if p.Admitted+p.Rejected != res.Clients {
			t.Errorf("%d nodes: admitted %d + rejected %d != %d clients",
				p.Nodes, p.Admitted, p.Rejected, res.Clients)
		}
		if p.Shared == 0 {
			t.Errorf("%d nodes: no viewer rode a fan-out group or the interval cache", p.Nodes)
		}
		if p.Lost != 0 {
			t.Errorf("%d nodes: %d frames lost in a quiet cluster", p.Nodes, p.Lost)
		}
		if p.Nodes > 1 && p.PlacementOpens == 0 {
			t.Errorf("%d nodes: placement rung never used", p.Nodes)
		}
	}
}
