package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/workload"
)

// DelaySweepPoint is one initial-delay setting's outcome at a fixed,
// deliberately aggressive stream count.
type DelaySweepPoint struct {
	Delay      sim.Time
	Throughput float64 // on-time bytes/s
	Fraction   float64 // of the disk rate
	Lost       int
}

// DelaySweepResult backs the Section 3.1 claim that a longer initial delay
// lets CRAS sustain more load (55% of the disk at 1 s, ~70% at 3 s for 25
// MPEG1 streams).
type DelaySweepResult struct {
	Streams int
	Points  []DelaySweepPoint
}

// RunDelaySweep measures on-time throughput for a fixed stream count at
// several initial delays.
func RunDelaySweep(seed int64, streams int, duration sim.Time, delays []sim.Time) *DelaySweepResult {
	if streams == 0 {
		streams = 25
	}
	if duration == 0 {
		duration = 30 * time.Second
	}
	if len(delays) == 0 {
		delays = []sim.Time{time.Second, 2 * time.Second, 3 * time.Second}
	}
	res := &DelaySweepResult{Streams: streams}
	for _, delay := range delays {
		r := RunPlayback(PlaybackConfig{
			Seed: seed, Streams: streams, Profile: media.MPEG1(),
			Duration: duration, UseCRAS: true, Force: true,
			InitialDelay: delay,
		})
		res.Points = append(res.Points, DelaySweepPoint{
			Delay:      delay,
			Throughput: r.OnTimeThroughput(),
			Fraction:   r.OnTimeThroughput() / r.MediaRate,
			Lost:       r.LostFrames(),
		})
	}
	return res
}

// Table renders the sweep.
func (r *DelaySweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Initial-delay sweep (Section 3.1): %d MPEG1 streams", r.Streams),
		"initial delay", "on-time throughput", "% of disk", "lost frames")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%v", p.Delay), metrics.MBps(p.Throughput),
			fmt.Sprintf("%.0f%%", 100*p.Fraction), p.Lost)
	}
	return t
}

// VBRResult demonstrates the first Section 3.2 problem: CRAS sizes buffers
// from the worst-case rate, so bursty VBR streams waste buffer memory.
type VBRResult struct {
	AvgRate     float64
	WorstRate   float64
	Capacity    int64
	PeakUsed    int64
	Utilization float64
	Lost        int
}

// RunVBR plays one VBR stream through CRAS and reports buffer economics.
func RunVBR(seed int64, duration sim.Time) *VBRResult {
	if duration == 0 {
		duration = 20 * time.Second
	}
	eng := sim.NewEngine(seed)
	info := media.VBRProfile{FrameRate: 30, MeanRate: 187500, Jitter: 0.3}.
		Generate("/vbr", duration+3*time.Second, eng.RNG("vbr"))

	var stats workload.PlayerStats
	var capacity, peak int64
	m := lab.Build(lab.Setup{
		Seed:   seed,
		Movies: []lab.Movie{{Path: "/vbr", Info: info}},
		CRAS:   core.Config{BufferBudget: 64 << 20},
	}, func(m *lab.Machine) {
		m.App("vbr-app", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			h, err := m.CRAS.Open(th, info, "/vbr", core.OpenOptions{})
			if err != nil {
				return
			}
			capacity = h.BufferStats().Capacity()
			h.Start(th)
			// Stay resident for the whole run, renewing the lease: this
			// client watches the buffer high-water mark rather than
			// consuming, and must not read as dead to the reaper.
			for end := m.Kernel.Now() + duration + 4*time.Second; m.Kernel.Now() < end; {
				th.Sleep(time.Second)
				h.Renew(th)
			}
			peak = h.BufferStats().PeakBytes
		})
		frames := int(duration / (sim.Time(time.Second) / 30))
		_ = frames
	})
	m.Run(duration + 8*time.Second)
	_ = stats
	res := &VBRResult{
		AvgRate:   info.AvgRate(),
		WorstRate: info.WorstCaseRate(500 * time.Millisecond),
		Capacity:  capacity,
		PeakUsed:  peak,
	}
	if capacity > 0 {
		res.Utilization = float64(peak) / float64(capacity)
	}
	return res
}

// Table renders the VBR buffer economics.
func (r *VBRResult) Table() *metrics.Table {
	t := metrics.NewTable("VBR buffer waste (Section 3.2 problem 1)", "metric", "value")
	t.AddRow("average rate", metrics.MBps(r.AvgRate))
	t.AddRow("worst-case rate (admission input)", metrics.MBps(r.WorstRate))
	t.AddRow("buffer capacity (worst-case sized)", fmt.Sprintf("%d KB", r.Capacity/1024))
	t.AddRow("peak buffer actually used", fmt.Sprintf("%d KB", r.PeakUsed/1024))
	t.AddRow("utilization", fmt.Sprintf("%.0f%%", 100*r.Utilization))
	return t
}

// FragmentationResult demonstrates the third Section 3.2 problem: an
// edited (fragmented) file degrades CRAS throughput because extents shrink.
type FragmentationResult struct {
	TunedAvgExtent  int64
	FragAvgExtent   int64
	TunedThroughput float64
	FragThroughput  float64
	TunedReads      int64
	FragReads       int64
}

// RunFragmentation plays identical stream sets on a tuned layout and on a
// rotdelay-fragmented layout.
func RunFragmentation(seed int64, streams int, duration sim.Time) *FragmentationResult {
	if streams == 0 {
		// Enough offered load that the fragmented layout's per-read
		// overhead actually costs throughput, not just extra requests.
		streams = 14
	}
	if duration == 0 {
		duration = 15 * time.Second
	}
	run := func(opts ufs.Options) (float64, int64, int64) {
		r := RunPlayback(PlaybackConfig{
			Seed: seed, Streams: streams, Profile: media.MPEG1(),
			Duration: duration, UseCRAS: true, Force: true, FSOpts: opts,
		})
		return r.OnTimeThroughput(), r.CRASStats.ReadsIssued, avgExtent(r)
	}
	res := &FragmentationResult{}
	res.TunedThroughput, res.TunedReads, res.TunedAvgExtent = run(ufs.Options{})
	res.FragThroughput, res.FragReads, res.FragAvgExtent = run(ufs.Options{MaxContig: 2, RotDelay: 4})
	return res
}

func avgExtent(r *PlaybackResult) int64 {
	if r.CRASStats.ReadsIssued == 0 {
		return 0
	}
	return r.CRASStats.BytesRead / r.CRASStats.ReadsIssued
}

// Table renders the comparison.
func (r *FragmentationResult) Table() *metrics.Table {
	t := metrics.NewTable("Fragmentation from editing (Section 3.2 problem 3)",
		"layout", "avg read size", "reads issued", "on-time throughput")
	t.AddRow("tuned (contiguous)", fmt.Sprintf("%d KB", r.TunedAvgExtent/1024), r.TunedReads, metrics.MBps(r.TunedThroughput))
	t.AddRow("fragmented (rotdelay)", fmt.Sprintf("%d KB", r.FragAvgExtent/1024), r.FragReads, metrics.MBps(r.FragThroughput))
	return t
}

// RecordResult exercises the constant-rate writing extension.
type RecordResult struct {
	Sessions       int
	PlannedBytes   int64
	WrittenBytes   int64
	IODeadlineMiss int
	Duration       sim.Time
}

// RunRecord records several streams simultaneously at a constant rate.
func RunRecord(seed int64, sessions int, duration sim.Time) *RecordResult {
	if sessions == 0 {
		sessions = 4
	}
	if duration == 0 {
		duration = 15 * time.Second
	}
	infos := make([]*media.StreamInfo, sessions)
	for i := range infos {
		infos[i] = media.MPEG1().Generate(fmt.Sprintf("/rec%d", i), duration)
	}
	res := &RecordResult{Sessions: sessions, Duration: duration}
	var server *core.Server
	m := lab.Build(lab.Setup{Seed: seed, CRAS: core.Config{BufferBudget: 64 << 20}},
		func(m *lab.Machine) {
			server = m.CRAS
			for i := 0; i < sessions; i++ {
				i := i
				m.App(fmt.Sprintf("recorder%d", i), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
					h, err := m.CRAS.OpenRecord(th, infos[i], fmt.Sprintf("/rec%d", i), core.OpenOptions{})
					if err != nil {
						return
					}
					h.Start(th)
					// A recorder rides the capture clock and never reads the
					// buffer; renew the lease until the capture is done, then
					// close like a well-behaved client.
					for end := m.Kernel.Now() + duration + 4*time.Second; m.Kernel.Now() < end; {
						th.Sleep(time.Second)
						h.Renew(th)
					}
					h.Close(th)
				})
			}
		})
	m.Run(duration + 6*time.Second)
	for _, info := range infos {
		res.PlannedBytes += info.TotalSize()
	}
	st := server.Stats()
	res.WrittenBytes = st.BytesRead // bytes moved by the periodic scheduler
	res.IODeadlineMiss = st.IODeadlineMiss
	return res
}

// Table renders the recording run.
func (r *RecordResult) Table() *metrics.Table {
	t := metrics.NewTable("Constant-rate recording (Conclusions extension)", "metric", "value")
	t.AddRow("sessions", r.Sessions)
	t.AddRow("planned bytes", fmt.Sprintf("%d KB", r.PlannedBytes/1024))
	t.AddRow("written bytes", fmt.Sprintf("%d KB", r.WrittenBytes/1024))
	t.AddRow("I/O deadline misses", r.IODeadlineMiss)
	return t
}
