package expt

import "testing"

// TestVCRSweepLadderAdmitsMore pins the headline BENCH_vcr.json claim: with
// the same RAM and the identical interactive script, reduced-rate warm-up
// admits strictly more viewers than suspend-on-refusal, and the extra
// admits really are warm-up admits (opened below full delivered rate).
func TestVCRSweepLadderAdmitsMore(t *testing.T) {
	res := RunVCRSweep(VCRSweepConfig{Seed: 7})
	sus, lad := res.Point("suspend"), res.Point("ladder")
	if sus == nil || lad == nil {
		t.Fatalf("missing sweep points: %+v", res.Points)
	}
	if lad.Admitted <= sus.Admitted {
		t.Fatalf("ladder admitted %d viewers, suspend %d; want strictly more",
			lad.Admitted, sus.Admitted)
	}
	if lad.ReducedOpens == 0 {
		t.Fatalf("ladder admitted %d extra viewers but recorded no reduced-rate opens",
			lad.Admitted-sus.Admitted)
	}
	if sus.ReducedOpens != 0 {
		t.Fatalf("suspend mode has no ladder, yet recorded %d reduced opens", sus.ReducedOpens)
	}
	if sus.Admitted+sus.Rejected != res.Clients || lad.Admitted+lad.Rejected != res.Clients {
		t.Fatalf("viewer conservation broken: suspend %d+%d, ladder %d+%d, clients %d",
			sus.Admitted, sus.Rejected, lad.Admitted, lad.Rejected, res.Clients)
	}
	if lad.Ops == 0 || lad.Pauses == 0 || lad.Seeks == 0 || lad.RateChanges == 0 {
		t.Fatalf("interactive script did not exercise the VCR surface: %+v", lad)
	}
}
