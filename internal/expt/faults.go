package expt

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// FaultSweepConfig drives the fault-recovery sweep: a fixed multi-stream
// playback load replayed across rising transient media-error rates.
type FaultSweepConfig struct {
	Seed     int64
	Streams  int       // default 4
	Duration sim.Time  // measured playback per stream; default 20 s
	Probs    []float64 // transient-error probabilities; default 0..0.20
}

// FaultPoint is one probability point of the sweep.
type FaultPoint struct {
	Prob     float64
	Injected int     // transient faults the model injected
	Retries  int64   // re-issued reads
	Denied   int64   // retries refused by the spare-time budget
	Hard     int64   // reads that failed even after retries
	Lost     int     // frames never delivered, all streams
	P95Lost  float64 // 95th percentile of per-stream lost frames

	// Recovery is the fraction of injected faults the deadline-budgeted
	// retry policy absorbed before they became hard errors (1 when nothing
	// was injected).
	Recovery float64
}

// FaultSweepResult is the sweep's row set.
type FaultSweepResult struct {
	Points []FaultPoint
}

// RunFaultSweep plays the same seeded load at each transient-error
// probability and measures how much of the injected fault load the
// recovery engine absorbs within its deadline budget. Faults are confined
// to the real-time queue, so the sweep isolates the retry policy from
// file-system setup effects.
func RunFaultSweep(cfg FaultSweepConfig) *FaultSweepResult {
	if cfg.Streams == 0 {
		cfg.Streams = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Second
	}
	if len(cfg.Probs) == 0 {
		cfg.Probs = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	}
	res := &FaultSweepResult{}
	for _, p := range cfg.Probs {
		run := RunPlayback(PlaybackConfig{
			Seed:     cfg.Seed,
			Streams:  cfg.Streams,
			Profile:  media.MPEG1(),
			Duration: cfg.Duration,
			UseCRAS:  true,
			Faults:   &disk.FaultConfig{TransientProb: p, RTOnly: true},
		})
		lost := make([]float64, len(run.Players))
		for i, pl := range run.Players {
			lost[i] = float64(pl.Lost)
		}
		pt := FaultPoint{
			Prob:     p,
			Injected: run.FaultStats.Transient,
			Retries:  run.CRASStats.ReadRetries,
			Denied:   run.CRASStats.RetriesDenied,
			Hard:     run.CRASStats.ReadErrors,
			Lost:     run.LostFrames(),
			P95Lost:  metrics.Pct(lost, 0.95),
			Recovery: 1,
		}
		if pt.Injected > 0 {
			pt.Recovery = 1 - float64(pt.Hard)/float64(pt.Injected)
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the sweep.
func (r *FaultSweepResult) Table() *metrics.Table {
	t := metrics.NewTable("Fault recovery: transient media errors vs the deadline-budgeted retry policy",
		"p(fault)", "injected", "retries", "denied", "hard", "recovery", "lost frames", "p95 lost/stream")
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", pt.Prob), pt.Injected, pt.Retries, pt.Denied, pt.Hard,
			fmt.Sprintf("%.1f%%", 100*pt.Recovery), pt.Lost, fmt.Sprintf("%.0f", pt.P95Lost))
	}
	return t
}
