package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OverloadSweepConfig drives the control-plane overload sweep: a fixed set
// of admitted viewers plays undisturbed while an open flood arrives at a
// rising rate, and the sweep measures how the shed gate and the bounded
// request port split the flood — and what it cost the admitted streams.
type OverloadSweepConfig struct {
	Seed     int64
	Viewers  int       // admitted baseline streams; default 4
	Duration sim.Time  // measured playback per viewer; default 12 s
	Rates    []float64 // flood open-arrival rates, opens/second; default 4..256
}

// OverloadPoint is one arrival-rate point.
type OverloadPoint struct {
	Rate     float64 // offered opens per second
	Launched int
	Admitted int // flood opens that succeeded (and closed again)
	Shed     int // typed overload errors seen by flooders
	Refused  int // admission refusals (the flood's own streams competing)

	RequestsShed  int      // server-side shed gate count
	SendsRejected int64    // bounded request port rejections
	RetryHint     sim.Time // last retry-after the gate suggested

	ViewerLost     int // frames the admitted viewers never got
	IODeadlineMiss int // interval batches finishing late
}

// ShedRate is the fraction of the flood turned away with a typed error.
func (p OverloadPoint) ShedRate() float64 {
	if p.Launched == 0 {
		return 0
	}
	return float64(p.Launched-p.Admitted) / float64(p.Launched)
}

// OverloadSweepResult is the sweep's row set.
type OverloadSweepResult struct {
	Viewers int
	Points  []OverloadPoint
}

// floodWindow is how long each point's flood keeps arriving. It starts one
// second in, after the viewers' own opens are done.
const floodWindow = 8 * time.Second

// RunOverloadSweep replays the same seeded viewer load against an open
// flood at each arrival rate. The control budget is pinned low (8 per
// interval) and the request queue short (16) so the gate's behaviour — not
// the disk's — is what the sweep exercises.
func RunOverloadSweep(cfg OverloadSweepConfig) *OverloadSweepResult {
	if cfg.Viewers == 0 {
		cfg.Viewers = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Second
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{4, 16, 64, 256}
	}
	res := &OverloadSweepResult{Viewers: cfg.Viewers}
	for _, rate := range cfg.Rates {
		res.Points = append(res.Points, runOverloadPoint(cfg, rate))
	}
	return res
}

func runOverloadPoint(cfg OverloadSweepConfig, rate float64) OverloadPoint {
	movieDur := cfg.Duration + 2*time.Second
	var movies []lab.Movie
	infos := make([]*media.StreamInfo, cfg.Viewers)
	for i := range infos {
		path := fmt.Sprintf("/m%02d", i)
		infos[i] = media.MPEG1().Generate(path, movieDur)
		movies = append(movies, lab.Movie{Path: path, Info: infos[i]})
	}

	count := int(rate * floodWindow.Seconds())
	burst := sim.Time(float64(time.Second) / rate)
	players := make([]*workload.PlayerStats, cfg.Viewers)
	for i := range players {
		players[i] = &workload.PlayerStats{}
	}
	var flood workload.FloodStats
	var server *core.Server
	m := lab.Build(lab.Setup{
		Seed:   cfg.Seed,
		Movies: movies,
		CRAS: core.Config{
			BufferBudget:        64 << 20,
			MaxRequestsPerCycle: 8,
			RequestQueueCap:     16,
		},
	}, func(m *lab.Machine) {
		server = m.CRAS
		for i := 0; i < cfg.Viewers; i++ {
			workload.CRASPlayer(m.Kernel, m.CRAS, infos[i], fmt.Sprintf("/m%02d", i),
				core.OpenOptions{}, workload.PlayerConfig{Priority: rtm.PrioRTLow}, players[i])
		}
		m.App("flood-ctl", rtm.PrioTS, 0, func(th *rtm.Thread) {
			th.Sleep(time.Second) // let the viewers' opens through first
			workload.OpenFlooder(m.Kernel, m.CRAS, infos[0], "/m00", count, burst, &flood)
		})
	})
	m.Run(cfg.Duration + 8*time.Second)

	st := server.Stats()
	pt := OverloadPoint{
		Rate:     rate,
		Launched: flood.Launched,
		Admitted: flood.Admitted,
		Shed:     flood.Shed,
		Refused:  flood.Refused,

		RequestsShed:  st.RequestsShed,
		SendsRejected: st.SendsRejected,
		RetryHint:     flood.RetryHint,

		IODeadlineMiss: st.IODeadlineMiss,
	}
	for _, p := range players {
		pt.ViewerLost += p.Lost
	}
	return pt
}

// Table renders the sweep.
func (r *OverloadSweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Control-plane overload: open flood against %d admitted viewers", r.Viewers),
		"opens/s", "launched", "admitted", "shed", "refused", "gate shed", "port reject",
		"shed rate", "viewer lost", "io miss")
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", pt.Rate), pt.Launched, pt.Admitted, pt.Shed, pt.Refused,
			pt.RequestsShed, pt.SendsRejected,
			fmt.Sprintf("%.0f%%", 100*pt.ShedRate()), pt.ViewerLost, pt.IODeadlineMiss)
	}
	return t
}
