package expt

import (
	"testing"
	"time"
)

// The ISSUE's acceptance criterion for the interval cache, as a regression
// test: with total RAM held constant, a skewed (Zipf 1.1) viewer population
// must see strictly more admitted streams with a cache budget than without,
// and the cache must visibly displace disk traffic.
func TestCacheSweepAdmitsMoreAtEqualRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine sweep")
	}
	res := RunCacheSweep(CacheSweepConfig{
		Seed:     1,
		Duration: 8 * time.Second,
		Alphas:   []float64{1.1},
		Budgets:  []int64{0, 16 << 20},
	})
	base := res.Point(1.1, 0)
	cached := res.Point(1.1, 16<<20)
	if base == nil || cached == nil {
		t.Fatalf("sweep missing points: %+v", res.Points)
	}
	t.Logf("no cache: %+v", *base)
	t.Logf("16MB cache: %+v", *cached)

	if base.Rejected == 0 {
		t.Error("baseline rejected nobody — the sweep no longer saturates the disk bound")
	}
	if cached.Admitted <= base.Admitted {
		t.Errorf("admitted %d with cache, %d without: cache-aware admission bought nothing",
			cached.Admitted, base.Admitted)
	}
	if cached.CacheBacked == 0 || cached.CacheHits == 0 {
		t.Errorf("cache run shows no cache service: backed %d, hits %d",
			cached.CacheBacked, cached.CacheHits)
	}
	if cached.BytesRead >= base.BytesRead {
		t.Errorf("cache run read %d disk bytes, baseline %d: no displacement",
			cached.BytesRead, base.BytesRead)
	}
	if cached.Lost > base.Lost {
		t.Errorf("cache run lost %d frames, baseline %d", cached.Lost, base.Lost)
	}
}
