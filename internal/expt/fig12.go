package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig12Point is one measured seek distance.
type Fig12Point struct {
	Distance int // cylinders
	Measured sim.Time
	Approx   sim.Time // the linear fit at the same distance
}

// Fig12Result is the seek-curve measurement and its linear approximation.
type Fig12Result struct {
	Points   []Fig12Point
	Alpha    float64 // seconds per cylinder
	Beta     float64 // seconds (the fit's Tseek_min)
	TseekMin sim.Time
	TseekMax sim.Time
}

// RunFig12 measures the disk's seek curve the way the paper's
// microbenchmark did and fits the linear approximation the admission test
// uses (Appendix C).
func RunFig12(seed int64) *Fig12Result {
	e := sim.NewEngine(seed)
	g, p := disk.ST32550N()
	d := disk.New(e, "sd0", g, p)
	params := core.MeasureAdmissionParams(d, 64<<10)
	res := &Fig12Result{
		TseekMin: params.TseekMin,
		TseekMax: params.TseekMax,
		Alpha:    (params.TseekMax - params.TseekMin).Seconds() / float64(g.Cylinders),
		Beta:     params.TseekMin.Seconds(),
	}
	for _, dist := range []int{1, 2, 5, 10, 25, 50, 100, 200, 400, 600, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3509} {
		res.Points = append(res.Points, Fig12Point{
			Distance: dist,
			Measured: d.ProbeSeek(0, dist),
			Approx:   sim.Time((res.Beta + res.Alpha*float64(dist)) * float64(time.Second)),
		})
	}
	return res
}

// Table renders the measured curve next to the approximation.
func (r *Fig12Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 12: disk seek time (linear fit: Tseek_min=%s, Tseek_max=%s)",
			metrics.Ms(r.TseekMin), metrics.Ms(r.TseekMax)),
		"distance (cyl)", "measured", "linear approx")
	for _, p := range r.Points {
		t.AddRow(p.Distance, metrics.Ms(p.Measured), metrics.Ms(p.Approx))
	}
	return t
}

// Table4Result is the measured disk parameter set.
type Table4Result struct {
	D         float64
	MeasuredD float64 // from a timed sequential transfer
	TseekMax  sim.Time
	TseekMin  sim.Time
	Trot      sim.Time
	Tcmd      sim.Time
	Bother    int64
}

// RunTable4 measures the parameters of Table 4 against the disk model: the
// seek fit from the probe, rotation and command overhead from the
// controller, and the transfer rate from a timed large sequential read.
func RunTable4(seed int64) *Table4Result {
	e := sim.NewEngine(seed)
	g, p := disk.ST32550N()
	d := disk.New(e, "sd0", g, p)
	params := core.MeasureAdmissionParams(d, 64<<10)

	// Timed transfer: read 4 MB sequentially in 256 KB requests and divide
	// out the fixed overheads, as a calibration benchmark would.
	var elapsed sim.Time
	e.Spawn("probe", func(pr *sim.Proc) {
		const reqSectors = 512
		const reqs = 16
		start := e.Now()
		for i := 0; i < reqs; i++ {
			d.ReadSync(pr, int64(i*reqSectors), reqSectors, false)
		}
		elapsed = e.Now() - start
	})
	e.Run()
	st := d.Stats()
	transferOnly := elapsed - st.CmdTime - st.SeekTime - st.RotTime
	measuredD := float64(16*512*512) / transferOnly.Seconds()

	return &Table4Result{
		D:         params.D,
		MeasuredD: measuredD,
		TseekMax:  params.TseekMax,
		TseekMin:  params.TseekMin,
		Trot:      params.Trot,
		Tcmd:      params.Tcmd,
		Bother:    params.Bother,
	}
}

// Table renders Table 4.
func (r *Table4Result) Table() *metrics.Table {
	t := metrics.NewTable("Table 4: measured disk parameters (paper: 6.5 MB/s, 17 ms, 4 ms, 8.33 ms, 2 ms, 64 KB)",
		"parameter", "value")
	t.AddRow("D (model)", metrics.MBps(r.D))
	t.AddRow("D (timed transfer)", metrics.MBps(r.MeasuredD))
	t.AddRow("Tseek_max", metrics.Ms(r.TseekMax))
	t.AddRow("Tseek_min", metrics.Ms(r.TseekMin))
	t.AddRow("Trot", metrics.Ms(r.Trot))
	t.AddRow("Tcmd", metrics.Ms(r.Tcmd))
	t.AddRow("Bother", fmt.Sprintf("%d KB", r.Bother/1024))
	return t
}
