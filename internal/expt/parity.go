package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// ParitySweepConfig parameterizes the rotating-parity capacity sweep: what
// one member's worth of redundancy costs against plain RAID-0, healthy and
// with a member dead.
type ParitySweepConfig struct {
	Seed          int64
	Duration      sim.Time // playback window per point; 0 = 12 s
	Disks         int      // member count for the multi-disk modes; 0 = 4
	StripeSectors int64    // stripe unit; 0 = the lab default (64 sectors)
}

// ParityPoint is one configuration's outcome. Mode is "single" (one bare
// disk), "raid0" (striped, no redundancy), "parity" (rotating parity,
// all members healthy) or "degraded" (rotating parity, one member killed
// before admission opens).
type ParityPoint struct {
	Mode            string    `json:"mode"`
	Disks           int       `json:"disks"`
	Admitted        int       `json:"admitted"`
	Util            []float64 `json:"util"` // per-member BusyTime fraction of the window
	IOMisses        int       `json:"io_misses"`
	DegradedReads   int64     `json:"degraded_reads"`
	Reconstructions int64     `json:"parity_reconstructions"`
}

// ParitySweepResult backs the disk-death extension's capacity accounting:
// the admitted-stream price of the parity rotation at equal member count,
// and the further price of serving every read by reconstruction.
type ParitySweepResult struct {
	StripeSectors int64         `json:"stripe_sectors"`
	Rate          float64       `json:"stream_rate"` // per-stream bytes/s
	Points        []ParityPoint `json:"points"`
}

// RunParitySweep opens identical MPEG2-class streams until admission
// refuses one, then plays the admitted set and samples member utilization —
// once per mode. The degraded point kills one member (operator fail, no
// detector latency) before any stream opens, so its admitted count is the
// honest degraded capacity, not an over-commitment walked down later.
func RunParitySweep(cfg ParitySweepConfig) *ParitySweepResult {
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Second
	}
	if cfg.Disks == 0 {
		cfg.Disks = 4
	}
	profile := media.MPEG2()
	info := profile.Generate("/movie", cfg.Duration+8*time.Second)
	res := &ParitySweepResult{Rate: profile.Rate}

	modes := []struct {
		mode   string
		disks  int
		parity bool
		kill   bool
	}{
		{"single", 1, false, false},
		{"raid0", cfg.Disks, false, false},
		{"parity", cfg.Disks, true, false},
		{"degraded", cfg.Disks, true, true},
	}
	for _, mo := range modes {
		pt := ParityPoint{Mode: mo.mode, Disks: mo.disks}
		m := lab.Build(lab.Setup{
			Seed:          cfg.Seed,
			Disks:         mo.disks,
			StripeSectors: cfg.StripeSectors,
			Parity:        mo.parity,
			Movies:        []lab.Movie{{Path: "/movie", Info: info}},
			CRAS: core.Config{
				BufferBudget:        512 << 20,
				MaxRequestsPerCycle: -1,
			},
		}, func(m *lab.Machine) {
			m.App("sweep", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
				if mo.kill {
					// Kill before any stream opens: the sweep measures the
					// capacity admission grants a volume already degraded.
					m.CRAS.FailMember(1)
					th.Sleep(2 * time.Second)
				}
				var handles []*core.Handle
				for len(handles) < 200 {
					h, err := m.CRAS.Open(th, info, "/movie", core.OpenOptions{})
					if err != nil {
						break
					}
					handles = append(handles, h)
				}
				pt.Admitted = len(handles)
				for _, h := range handles {
					h.Start(th)
				}
				busy0 := make([]sim.Time, m.Vol.NumDisks())
				for d := range busy0 {
					busy0[d] = m.Vol.Disk(d).Stats().BusyTime
				}
				start := m.Kernel.Now()
				for m.Kernel.Now() < start+cfg.Duration {
					th.Sleep(time.Second)
					for _, h := range handles {
						h.Renew(th)
					}
				}
				window := m.Kernel.Now() - start
				pt.Util = make([]float64, m.Vol.NumDisks())
				for d := range pt.Util {
					busy := m.Vol.Disk(d).Stats().BusyTime - busy0[d]
					pt.Util[d] = busy.Seconds() / window.Seconds()
				}
				st := m.CRAS.Stats()
				pt.IOMisses = st.IODeadlineMiss
				pt.DegradedReads = st.DegradedReads
				pt.Reconstructions = st.ParityReconstructions
				for _, h := range handles {
					h.Close(th)
				}
			})
		})
		m.Run(cfg.Duration + 22*time.Second)
		if res.StripeSectors == 0 {
			res.StripeSectors = m.Vol.StripeSectors()
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the sweep: one row per mode. The parity row's admitted
// count against the raid0 row is the redundancy tax; the degraded row's
// against the parity row is the reconstruction tax.
func (r *ParitySweepResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Rotating-parity capacity (stripe %d sectors, %s streams)",
			r.StripeSectors, metrics.MBps(r.Rate)),
		"mode", "disks", "admitted", "member util min", "member util max",
		"I/O misses", "degraded reads", "XOR rows")
	for _, p := range r.Points {
		lo, hi := 1.0, 0.0
		for _, u := range p.Util {
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if len(p.Util) == 0 {
			lo = 0
		}
		t.AddRow(p.Mode, p.Disks, p.Admitted,
			fmt.Sprintf("%.0f%%", 100*lo), fmt.Sprintf("%.0f%%", 100*hi),
			p.IOMisses, p.DegradedReads, p.Reconstructions)
	}
	return t
}
