package expt

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig10Config parameterizes the scheduling-policy comparison of Figure 10:
// one 1.5 Mb/s stream retrieved through CRAS while CPU-bound tasks run,
// under fixed-priority and under round-robin scheduling.
type Fig10Config struct {
	Seed     int64
	Duration sim.Time
	Hogs     int
}

func (c *Fig10Config) fill() {
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.Hogs == 0 {
		c.Hogs = 3
	}
}

// Fig10Result carries the two delay traces.
type Fig10Result struct {
	Config        Fig10Config
	FixedPriority metrics.Series
	RoundRobin    metrics.Series
	FPLost        int
	RRLost        int
}

// RunFig10 regenerates Figure 10.
func RunFig10(cfg Fig10Config) *Fig10Result {
	cfg.fill()
	res := &Fig10Result{Config: cfg}
	base := PlaybackConfig{
		Seed: cfg.Seed, Streams: 1, Profile: media.MPEG1(),
		Duration: cfg.Duration, UseCRAS: true, Hogs: cfg.Hogs,
		// The player does real per-frame work (fetch, decode dispatch);
		// the policies differ exactly in how long that work waits for the
		// CPU behind the hogs.
		PlayerFrameCPU: 2 * time.Millisecond,
	}
	c := base
	c.Policy = FixedPriority
	r := RunPlayback(c)
	res.FixedPriority = r.Players[0].DelaySeries
	res.FPLost = r.LostFrames()

	c = base
	c.Policy = RoundRobin
	r = RunPlayback(c)
	res.RoundRobin = r.Players[0].DelaySeries
	res.RRLost = r.LostFrames()
	return res
}

// Table renders per-second worst delays plus summary rows.
func (r *Fig10Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 10: frame delay with %d CPU-bound competitors, fixed-priority vs round-robin", r.Config.Hogs),
		"second", "fixed-priority max", "round-robin max")
	bucketMax := func(s *metrics.Series, sec int) float64 {
		lo, hi := sim.Time(sec)*time.Second, sim.Time(sec+1)*time.Second
		var max float64
		for _, p := range s.Points {
			if p.T >= lo && p.T < hi && p.V > max {
				max = p.V
			}
		}
		return max
	}
	secs := int(r.Config.Duration / time.Second)
	for sec := 0; sec <= secs+2; sec++ {
		t.AddRow(sec,
			fmt.Sprintf("%.1f ms", 1000*bucketMax(&r.FixedPriority, sec)),
			fmt.Sprintf("%.1f ms", 1000*bucketMax(&r.RoundRobin, sec)))
	}
	fp, rr := r.FixedPriority.Summary(), r.RoundRobin.Summary()
	t.AddRow("mean", fmt.Sprintf("%.1f ms", 1000*fp.Mean), fmt.Sprintf("%.1f ms", 1000*rr.Mean))
	t.AddRow("max", fmt.Sprintf("%.1f ms", 1000*fp.Max), fmt.Sprintf("%.1f ms", 1000*rr.Max))
	t.AddRow("lost", r.FPLost, r.RRLost)
	return t
}
