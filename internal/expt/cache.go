package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CacheSweepConfig drives the interval-cache evaluation: a Zipf viewer
// population replayed across cache budgets, the total RAM held constant so
// every point answers "what does turning buffer memory into cache memory
// buy?". The skew axis is what the cache's value depends on — at alpha 0
// viewers spread across the catalog and overlaps are luck, at 1.1 most of
// the population piles onto a few titles and overlaps are the common case.
type CacheSweepConfig struct {
	Seed          int64
	Movies        int      // catalog size; default 12
	Clients       int      // viewer population; default 30
	Duration      sim.Time // measured playback per viewer; default 20 s
	ArrivalSpread sim.Time // arrivals uniform over this window; default 5 s
	TotalRAM      int64    // buffer + cache memory; default 48 MB
	Alphas        []float64
	Budgets       []int64 // cache budgets carved out of TotalRAM
}

// CachePoint is one (alpha, budget) cell.
type CachePoint struct {
	Alpha       float64
	Budget      int64
	Admitted    int   // viewers past admission
	CacheBacked int   // of those, opened as cache followers
	Rejected    int   // viewers refused
	CacheHits   int64 // chunks stamped from pins instead of disk
	Fallbacks   int   // followers converted back to disk mid-run
	BytesRead   int64 // CRAS disk traffic
	DiskUtil    float64
	Lost        int // frames lost across all admitted viewers
}

// CacheSweepResult is the sweep's cell set.
type CacheSweepResult struct {
	Points []CachePoint
}

// Point returns the cell for (alpha, budget), or nil.
func (r *CacheSweepResult) Point(alpha float64, budget int64) *CachePoint {
	for i := range r.Points {
		if r.Points[i].Alpha == alpha && r.Points[i].Budget == budget {
			return &r.Points[i]
		}
	}
	return nil
}

// RunCacheSweep replays the identical seeded arrival script at every
// (alpha, budget) cell. Within one alpha the scripts are byte-identical —
// same movies, same arrival times — so admitted-stream differences between
// budgets are the cache's doing, not sampling noise.
func RunCacheSweep(cfg CacheSweepConfig) *CacheSweepResult {
	if cfg.Movies == 0 {
		cfg.Movies = 12
	}
	if cfg.Clients == 0 {
		cfg.Clients = 30
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Second
	}
	if cfg.ArrivalSpread == 0 {
		cfg.ArrivalSpread = 5 * time.Second
	}
	if cfg.TotalRAM == 0 {
		cfg.TotalRAM = 48 << 20
	}
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0, 0.7, 1.1}
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = []int64{0, 8 << 20, 32 << 20}
	}

	res := &CacheSweepResult{}
	for _, alpha := range cfg.Alphas {
		for _, budget := range cfg.Budgets {
			res.Points = append(res.Points, runCachePoint(cfg, alpha, budget))
		}
	}
	return res
}

func runCachePoint(cfg CacheSweepConfig, alpha float64, budget int64) CachePoint {
	prof := media.MPEG1()
	movieDur := cfg.Duration + cfg.ArrivalSpread + 2*time.Second
	var movies []lab.Movie
	var infos []*media.StreamInfo
	var paths []string
	for i := 0; i < cfg.Movies; i++ {
		path := fmt.Sprintf("/z%02d", i)
		info := prof.Generate(path, movieDur)
		movies = append(movies, lab.Movie{Path: path, Info: info})
		infos = append(infos, info)
		paths = append(paths, path)
	}

	frames := int(cfg.Duration / (sim.Time(time.Second) / sim.Time(prof.FrameRate)))
	var outs []*workload.ViewerOutcome
	var busy0 sim.Time
	var start sim.Time
	m := lab.Build(lab.Setup{
		Seed: cfg.Seed,
		CRAS: core.Config{
			BufferBudget: cfg.TotalRAM - budget,
			CacheBudget:  budget,
		},
		Movies: movies,
	}, func(m *lab.Machine) {
		start = m.Eng.Now()
		busy0 = m.Disk.Stats().BusyTime // setup I/O is not the sweep's traffic
		outs = workload.LaunchZipfViewers(m.Kernel, m.CRAS, infos, paths,
			m.Eng.RNG("cache-sweep"), workload.ZipfViewerConfig{
				Clients: cfg.Clients, Alpha: alpha, ArrivalSpread: cfg.ArrivalSpread,
				Player: workload.PlayerConfig{MaxFrames: frames},
			})
	})
	horizon := 2*cfg.Duration + cfg.ArrivalSpread + 30*time.Second
	for ran := sim.Time(0); ran < horizon; ran += time.Second {
		m.Run(time.Second)
		done := true
		for _, o := range outs {
			if !o.Stats.Done {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if err := m.Err(); err != nil {
		panic(err)
	}

	pt := CachePoint{Alpha: alpha, Budget: budget}
	for _, o := range outs {
		if !o.Admitted {
			pt.Rejected++
			continue
		}
		pt.Admitted++
		if o.CacheBacked {
			pt.CacheBacked++
		}
		pt.Lost += o.Stats.Lost
	}
	st := m.CRAS.Stats()
	pt.CacheHits = st.CacheHits
	pt.Fallbacks = st.CacheFallbacks
	pt.BytesRead = st.BytesRead
	if elapsed := m.Eng.Now() - start; elapsed > 0 {
		pt.DiskUtil = float64(m.Disk.Stats().BusyTime-busy0) / float64(elapsed)
	}
	return pt
}

// Table renders the sweep.
func (r *CacheSweepResult) Table() *metrics.Table {
	t := metrics.NewTable("Interval cache: admitted streams and disk load vs cache budget (total RAM fixed)",
		"alpha", "cache MB", "admitted", "cache-backed", "rejected", "hits", "fallbacks", "disk MB", "disk util", "lost")
	for _, pt := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.1f", pt.Alpha),
			fmt.Sprintf("%d", pt.Budget>>20),
			pt.Admitted, pt.CacheBacked, pt.Rejected,
			pt.CacheHits, pt.Fallbacks,
			fmt.Sprintf("%.1f", float64(pt.BytesRead)/(1<<20)),
			fmt.Sprintf("%.0f%%", 100*pt.DiskUtil),
			pt.Lost,
		)
	}
	return t
}
