package expt

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig6Config parameterizes the throughput comparison of Figure 6: N
// simultaneous 1.5 Mb/s streams through CRAS and through the Unix file
// system, with and without background disk activity.
type Fig6Config struct {
	Seed         int64
	StreamCounts []int
	Duration     sim.Time
	Interval     sim.Time
	InitialDelay sim.Time
}

func (c *Fig6Config) fill() {
	if len(c.StreamCounts) == 0 {
		c.StreamCounts = []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25}
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.InitialDelay == 0 {
		c.InitialDelay = time.Second
	}
}

// Fig6Point is one x-position of the figure.
type Fig6Point struct {
	Streams        int
	CRASNoLoad     float64 // on-time bytes/second
	CRASLoad       float64
	UFSNoLoad      float64
	UFSLoad        float64
	CRASLostNoLoad int
	UFSLostNoLoad  int
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Config    Fig6Config
	Points    []Fig6Point
	MediaRate float64
}

// RunFig6 regenerates Figure 6.
func RunFig6(cfg Fig6Config) *Fig6Result {
	cfg.fill()
	res := &Fig6Result{Config: cfg}
	for _, n := range cfg.StreamCounts {
		pt := Fig6Point{Streams: n}
		base := PlaybackConfig{
			Seed: cfg.Seed, Streams: n, Profile: media.MPEG1(),
			Duration: cfg.Duration, Interval: cfg.Interval,
			InitialDelay: cfg.InitialDelay, Force: true,
		}

		c := base
		c.UseCRAS = true
		r := RunPlayback(c)
		pt.CRASNoLoad = r.OnTimeThroughput()
		pt.CRASLostNoLoad = r.LostFrames()
		res.MediaRate = r.MediaRate

		c = base
		c.UseCRAS = true
		c.Load = true
		pt.CRASLoad = RunPlayback(c).OnTimeThroughput()

		c = base
		r = RunPlayback(c)
		pt.UFSNoLoad = r.OnTimeThroughput()
		pt.UFSLostNoLoad = r.LostFrames()

		c = base
		c.Load = true
		pt.UFSLoad = RunPlayback(c).OnTimeThroughput()

		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the figure's series as rows.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 6: CRAS vs UFS throughput (on-time bytes/s; 1.5 Mb/s streams, T=%v, delay=%v, disk %.2f MB/s)",
			r.Config.Interval, r.Config.InitialDelay, r.MediaRate/1e6),
		"streams", "CRAS:no-load", "CRAS:load", "UFS:no-load", "UFS:load", "CRAS %disk", "UFS %disk")
	for _, p := range r.Points {
		t.AddRow(p.Streams,
			metrics.MBps(p.CRASNoLoad), metrics.MBps(p.CRASLoad),
			metrics.MBps(p.UFSNoLoad), metrics.MBps(p.UFSLoad),
			fmt.Sprintf("%.0f%%", 100*p.CRASNoLoad/r.MediaRate),
			fmt.Sprintf("%.0f%%", 100*p.UFSNoLoad/r.MediaRate))
	}
	return t
}

// PeakCRASFraction returns the best CRAS no-load throughput as a fraction
// of the disk rate — the paper's "55% of the disk's maximum transfer rate"
// claim at a 1 s initial delay (70% at 3 s).
func (r *Fig6Result) PeakCRASFraction() float64 {
	var peak float64
	for _, p := range r.Points {
		if p.CRASNoLoad > peak {
			peak = p.CRASNoLoad
		}
	}
	if r.MediaRate == 0 {
		return 0
	}
	return peak / r.MediaRate
}

// UFSCollapseUnderLoad reports the largest stream count at which the UFS
// load curve still delivered at least half its offered rate — the paper
// found it "cannot support even one stream" with competing traffic.
func (r *Fig6Result) UFSCollapseUnderLoad() int {
	last := 0
	for _, p := range r.Points {
		offered := float64(p.Streams) * 187500
		if p.UFSLoad >= offered/2 {
			last = p.Streams
		}
	}
	return last
}
