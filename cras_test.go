package cras_test

import (
	"testing"
	"time"

	cras "repro"
)

// The facade must be sufficient to run the full system without touching
// internal packages — this is the same path examples/quickstart takes.
func TestPublicAPIEndToEnd(t *testing.T) {
	movie := cras.MPEG1().Generate("/clip", 4*time.Second)
	var stats cras.PlayerStats
	m := cras.BuildLab(cras.LabSetup{
		Seed:          1,
		DiskCylinders: 600,
		Movies:        []cras.LabMovie{{Path: "/clip", Info: movie}},
	}, func(m *cras.Lab) {
		cras.CRASPlayer(m.Kernel, m.CRAS, movie, "/clip",
			cras.OpenOptions{}, cras.PlayerConfig{}, &stats)
	})
	m.Run(10 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if !stats.Done || stats.Lost != 0 || stats.Obtained != 120 {
		t.Fatalf("playback through the facade: %+v", stats)
	}
	if s := cras.Summarize(stats.Delays.Values()); s.Max > 0.02 {
		t.Fatalf("max delay %.3fs", s.Max)
	}
}

// The session API surface (crs_* calls) through the facade.
func TestPublicAPISessionControls(t *testing.T) {
	movie := cras.MPEG1().Generate("/clip", 30*time.Second)
	m := cras.BuildLab(cras.LabSetup{
		Seed:          2,
		DiskCylinders: 900,
		Movies:        []cras.LabMovie{{Path: "/clip", Info: movie}},
		CRAS:          cras.Config{BufferBudget: 32 << 20},
	}, func(m *cras.Lab) {
		m.App("app", cras.PrioRTLow, 0, func(th *cras.Thread) {
			h, err := m.CRAS.Open(th, movie, "/clip", cras.OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			if err := h.Start(th); err != nil {
				t.Errorf("Start: %v", err)
			}
			th.Sleep(2 * time.Second)
			if h.LogicalNow() <= 0 {
				t.Error("clock not advancing")
			}
			if err := h.Stop(th); err != nil {
				t.Errorf("Stop: %v", err)
			}
			if err := h.Seek(th, 20*time.Second); err != nil {
				t.Errorf("Seek: %v", err)
			}
			if err := h.SetRate(th, 2.0); err != nil {
				t.Errorf("SetRate: %v", err)
			}
			if err := h.Close(th); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
	})
	m.Run(10 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

// Admission types are usable from the facade for capacity planning without
// running a simulation.
func TestPublicAPIAdmissionPlanning(t *testing.T) {
	eng := cras.NewEngine(1)
	g, p := cras.ST32550N()
	d := cras.NewDisk(eng, "sd0", g, p)
	params := cras.MeasureAdmissionParams(d, 64<<10)
	sp := cras.StreamParams{Rate: 187500, Chunk: 6250}
	n := params.MaxStreams(500*time.Millisecond, 1<<30, sp)
	if n < 12 || n > 17 {
		t.Fatalf("planned capacity = %d", n)
	}
	if cras.MediaRate(g, p) < 6e6 {
		t.Fatal("media rate off")
	}
}
