// VOD server: the paper's motivating small-scale scenario. A handful of
// clients open movie sessions against one CRAS instance while two
// background "cat" jobs hammer the same disk through the Unix file system.
// Admission control turns away the sessions the disk cannot carry; the
// admitted ones play with constant-rate guarantees, untouched by the
// background traffic.
package main

import (
	"fmt"
	"time"

	cras "repro"
)

func main() {
	const wantClients = 9 // more than the admission test will allow at 6 Mb/s

	// A small library: three MPEG2-class titles plus a bulk file for cats.
	var movies []cras.LabMovie
	var infos []*cras.StreamInfo
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/library/title%d", i)
		info := cras.MPEG2().Generate(path, 20*time.Second)
		infos = append(infos, info)
		movies = append(movies, cras.LabMovie{Path: path, Info: info})
	}
	bulk := cras.MPEG1().Generate("/library/bulk", 20*time.Second)
	movies = append(movies, cras.LabMovie{Path: "/library/bulk", Info: bulk})

	stats := make([]*cras.PlayerStats, wantClients)
	rejected := make([]bool, wantClients)

	machine := cras.BuildLab(cras.LabSetup{
		Seed:   7,
		Movies: movies,
		CRAS:   cras.Config{BufferBudget: 64 << 20},
	}, func(m *cras.Lab) {
		// Competing, non-real-time disk traffic.
		cras.BackgroundReader(m.Kernel, m.Unix, "/library/bulk", cras.PrioTS, 0)
		cras.BackgroundReader(m.Kernel, m.Unix, "/library/bulk", cras.PrioTS, 0)

		for c := 0; c < wantClients; c++ {
			c := c
			stats[c] = &cras.PlayerStats{}
			title := c % len(infos)
			path := fmt.Sprintf("/library/title%d", title)
			m.App(fmt.Sprintf("client%d", c), cras.PrioRTLow, 0, func(th *cras.Thread) {
				// Clients arrive over the first seconds, as users would.
				th.Sleep(cras.Time(c) * 500 * time.Millisecond)
				h, err := m.CRAS.Open(th, infos[title], path, cras.OpenOptions{})
				if err != nil {
					rejected[c] = true
					stats[c].Done = true
					fmt.Printf("t=%-6v client %d: REJECTED (%v)\n", m.Kernel.Now().Round(time.Millisecond), c, errShort(err))
					return
				}
				fmt.Printf("t=%-6v client %d: admitted on %s\n", m.Kernel.Now().Round(time.Millisecond), c, path)
				h.Close(th)
				// Re-open through the player, which manages the session.
				cras.CRASPlayer(m.Kernel, m.CRAS, infos[title], path,
					cras.OpenOptions{}, cras.PlayerConfig{MaxFrames: 300}, stats[c])
			})
		}
	})
	machine.Run(40 * time.Second)
	if err := machine.Err(); err != nil {
		panic(err)
	}

	fmt.Println()
	admitted, lostTotal := 0, 0
	for c, st := range stats {
		if rejected[c] {
			continue
		}
		admitted++
		lostTotal += st.Lost
		s := cras.Summarize(st.Delays.Values())
		fmt.Printf("client %d: %d/%d frames, max delay %.2f ms\n", c, st.Obtained, st.Frames, 1000*s.Max)
	}
	srv := machine.CRAS.Stats()
	fmt.Printf("\nadmitted %d of %d clients (%d rejected by the admission test)\n",
		admitted, wantClients, srv.AdmissionRejects)
	fmt.Printf("server moved %.1f MB in %d reads; %d I/O deadline misses; %d frames lost\n",
		float64(srv.BytesRead)/1e6, srv.ReadsIssued, srv.IODeadlineMiss, lostTotal)
}

func errShort(err error) string {
	if ae, ok := err.(*cras.AdmissionError); ok {
		return ae.Reason
	}
	return err.Error()
}
