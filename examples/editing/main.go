// Editing and fragmentation: the third problem of Section 3.2. CRAS
// inherits the Unix file system's layout, so a media file assembled by an
// editor (whose writes interleave with other files) ends up with its
// blocks scattered. The extent map shrinks, CRAS needs many small reads
// instead of few 256 KB ones, and throughput headroom evaporates — the
// paper's argument for rearranging edited media files.
package main

import (
	"fmt"
	"time"

	cras "repro"
)

func main() {
	const seconds = 20
	clip := cras.MPEG1().Generate("/pristine", seconds*time.Second)
	edited := cras.MPEG1().Generate("/edited", seconds*time.Second)

	machine := cras.BuildLab(cras.LabSetup{
		Seed: 11,
		// The pristine clip is laid out contiguously by the lab setup.
		Movies: []cras.LabMovie{{Path: "/pristine", Info: clip}},
	}, func(m *cras.Lab) {
		m.App("editor-then-player", cras.PrioRTLow, 0, func(th *cras.Thread) {
			c := cras.NewUnixClient(m.Unix, th)

			// "Edit" a movie: write it in pieces, interleaved with another
			// growing file, the way a cut-and-paste editing session does.
			// Every alternate allocation goes to the scratch file, so the
			// edited movie's blocks end up scattered.
			edFd, err := c.Create("/edited")
			if err != nil {
				panic(err)
			}
			scratchFd, err := c.Create("/scratch")
			if err != nil {
				panic(err)
			}
			piece := make([]byte, 8192)
			for i := range piece {
				piece[i] = 0x42
			}
			total := edited.TotalSize()
			for off := int64(0); off < total; off += int64(len(piece)) {
				if _, err := c.Write(edFd, off, piece); err != nil {
					panic(err)
				}
				if _, err := c.Write(scratchFd, off, piece); err != nil {
					panic(err)
				}
			}
			// Control track for the edited movie.
			ctlFd, err := c.Create("/edited.ctl")
			if err != nil {
				panic(err)
			}
			if _, err := c.Write(ctlFd, 0, cras.EncodeControl(edited)); err != nil {
				panic(err)
			}
			if err := c.Sync(); err != nil {
				panic(err)
			}

			// Play both through CRAS and compare what the layouts did.
			for _, tc := range []struct {
				name string
				info *cras.StreamInfo
			}{{"/pristine", clip}, {"/edited", edited}} {
				h, err := m.CRAS.Open(th, tc.info, tc.name, cras.OpenOptions{})
				if err != nil {
					panic(err)
				}
				ext := h.ExtentMap()
				h.Start(th)
				th.Sleep(m.CRAS.Config().InitialDelay + cras.Time(seconds+1)*time.Second)
				st := h.StreamStats()
				fmt.Printf("%-10s %4d extents, avg run %3d KB -> %4d reads, %4d chunks on time, %3d late\n",
					tc.name, len(ext.Extents), ext.AverageRunBytes()/1024,
					st.ReadsIssued, st.ChunksStamped-st.ChunksLate, st.ChunksLate)
				h.Close(th)
			}
		})
	})
	machine.Run(2 * time.Minute)
	if err := machine.Err(); err != nil {
		panic(err)
	}
}
