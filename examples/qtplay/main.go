// QtPlay: the paper's Figure 11 application. Machine A (qtserver) retrieves
// QuickTime-style movies — a video track and an audio track each — through
// CRAS and transmits them over NPS's rate-reserved network channels;
// machine B (qtclient) hands video to the X11 server and audio to the audio
// server, here modeled as consumers that check arrival against the
// presentation schedule. Two movies play simultaneously while a best-effort
// bulk transfer hammers the same 10 Mb/s link; the reservations keep the
// streams' arrival jitter bounded.
package main

import (
	"fmt"
	"time"

	cras "repro"
	"repro/internal/nps"
)

type frameTag struct {
	movie string
	kind  string // "video" or "audio"
	index int
	due   cras.Time
}

func main() {
	const movies = 2
	const seconds = 12

	// Each movie is one QuickTime-style container file holding a video
	// track and an audio track (44.1 kHz 16-bit stereo, chunked at the
	// video frame rate).
	var containers []*cras.Container
	for i := 0; i < movies; i++ {
		containers = append(containers, &cras.Container{
			Name: fmt.Sprintf("/qt/movie%d", i),
			Tracks: []cras.Track{
				{Kind: "video", Info: cras.MPEG1().Generate("v", seconds*time.Second)},
				{Kind: "audio", Info: cras.CBRProfile{FrameRate: 30, Rate: 176400}.Generate("a", seconds*time.Second)},
			},
		})
	}

	type sinkStats struct {
		got   int
		late  int
		worst cras.Time
	}
	x11 := make([]*sinkStats, movies)
	aud := make([]*sinkStats, movies)
	for i := range x11 {
		x11[i] = &sinkStats{}
		aud[i] = &sinkStats{}
	}

	// Machine A: the lab machine (disk, UFS, CRAS) is qtserver.
	machine := cras.BuildLab(cras.LabSetup{
		Seed:       5,
		Containers: containers,
		CRAS:       cras.Config{BufferBudget: 64 << 20},
	}, func(m *cras.Lab) {
		eng := m.Eng
		// Machine B: a second kernel on the same engine is qtclient.
		client := cras.NewKernel(eng)
		// The 10 Mb/s Ethernet between them.
		net := nps.New(eng, "eth0", nps.Config{})

		// Best-effort competition: an "ftp" moving bulk data.
		ftpDst := client.NewPort("ftp-rx")
		ftp, err := net.NewChannel("ftp", 0, ftpDst)
		if err != nil {
			panic(err)
		}
		client.NewThread("ftp-rx", cras.PrioTS, 0, func(th *cras.Thread) {
			for {
				ftpDst.Receive(th)
			}
		})
		m.Kernel.NewThread("ftp-tx", cras.PrioTS, 0, func(th *cras.Thread) {
			for {
				if err := ftp.Send(th, 60_000, nil); err != nil {
					return
				}
			}
		})

		for i := 0; i < movies; i++ {
			i := i
			// Client-side sinks: the X11 server and the audio server.
			videoPort := client.NewPort(fmt.Sprintf("x11-%d", i))
			audioPort := client.NewPort(fmt.Sprintf("audio-%d", i))
			sink := func(port *cras.Port, st *sinkStats, name string) {
				client.NewThread(name, cras.PrioRT, 0, func(th *cras.Thread) {
					for {
						p := port.Receive(th).(nps.Packet)
						tag := p.Tag.(frameTag)
						st.got++
						// A frame is presentable if it arrives within one
						// frame time of its presentation point.
						lateBy := p.Arrived - tag.due
						if lateBy > cras.Time(time.Second)/30 {
							st.late++
						}
						if lateBy > st.worst {
							st.worst = lateBy
						}
					}
				})
			}
			sink(videoPort, x11[i], fmt.Sprintf("x11server-%d", i))
			sink(audioPort, aud[i], fmt.Sprintf("audioserver-%d", i))

			// Server-side: reserved channels sized to the track rates.
			vch, err := net.NewChannel(fmt.Sprintf("video%d", i), 190e3, videoPort)
			if err != nil {
				panic(err)
			}
			ach, err := net.NewChannel(fmt.Sprintf("audio%d", i), 180e3, audioPort)
			if err != nil {
				panic(err)
			}

			// qtserver threads: retrieve via CRAS, transmit via NPS. Both
			// tracks read from the same container file.
			streamer := func(info *cras.StreamInfo, path string, ch *nps.Channel, kind string) {
				m.Kernel.NewThread("qtserver-"+path+"-"+kind, cras.PrioRTLow, 0, func(th *cras.Thread) {
					h, err := m.CRAS.Open(th, info, path, cras.OpenOptions{})
					if err != nil {
						panic(err)
					}
					h.Start(th)
					for f := range info.Chunks {
						c := info.Chunks[f]
						due := h.ClockStartsAt(c.Timestamp)
						if m.Kernel.Now() < due {
							th.SleepUntil(due)
						}
						chunk, ok := h.Get(c.Timestamp)
						if !ok {
							continue
						}
						ch.Send(th, int(chunk.Size), frameTag{
							movie: path, kind: kind, index: f,
							// Presentation point: one frame after retrieval
							// (the client's own delay budget).
							due: due + c.Duration,
						})
					}
					h.Close(th)
				})
			}
			path := fmt.Sprintf("/qt/movie%d", i)
			tracks := m.Tracks[path]
			streamer(tracks[0], path, vch, "video")
			streamer(tracks[1], path, ach, "audio")
		}
	})
	machine.Run((seconds + 10) * time.Second)
	if err := machine.Err(); err != nil {
		panic(err)
	}

	for i := 0; i < movies; i++ {
		fmt.Printf("movie %d: video %3d frames, %d late, worst slack-overrun %6.2f ms | audio %3d chunks, %d late, worst %6.2f ms\n",
			i, x11[i].got, x11[i].late, float64(x11[i].worst)/1e6,
			aud[i].got, aud[i].late, float64(aud[i].worst)/1e6)
	}
	st := machine.CRAS.Stats()
	fmt.Printf("qtserver CRAS: %d reads, %d deadline misses; both movies + ftp shared one 10 Mb/s link\n",
		st.ReadsIssued, st.IODeadlineMiss)
}
