// Dynamic QoS control: the property the time-driven shared memory buffer
// exists for (Section 2.4 and the QtPlay experience in Section 3.2). The
// application changes its own consumption — dropping to 10 fps, pausing,
// seeking, then switching the retrieval to 2x for the paper's
// "fast-forward retrieves everything" case — while the server keeps
// retrieving at a constant rate. No feedback protocol, no buffer overflow:
// obsolete frames are discarded by their timestamps.
package main

import (
	"fmt"
	"time"

	cras "repro"
)

func main() {
	movie := cras.MPEG1().Generate("/clip", 60*time.Second)

	machine := cras.BuildLab(cras.LabSetup{
		Seed:   3,
		Movies: []cras.LabMovie{{Path: "/clip", Info: movie}},
		CRAS:   cras.Config{BufferBudget: 32 << 20},
	}, func(m *cras.Lab) {
		m.App("qos-player", cras.PrioRTLow, 0, func(th *cras.Thread) {
			h, err := m.CRAS.Open(th, movie, "/clip", cras.OpenOptions{})
			if err != nil {
				panic(err)
			}
			h.Start(th)

			phase := func(name string, fps int, frames int) {
				got, missed := 0, 0
				interval := cras.Time(time.Second) / cras.Time(fps)
				for i := 0; i < frames; i++ {
					// Sample the stream at our own rate: ask the shared
					// buffer for the frame that is current *now* on the
					// stream's clock. crs_get — no server round trip.
					if _, ok := h.Get(h.LogicalNow()); ok {
						got++
					} else {
						missed++
					}
					th.Sleep(interval)
				}
				buf := h.BufferStats()
				fmt.Printf("%-28s got %3d/%3d frames  (buffer: %3d KB resident, %d discarded unread, overflows %d)\n",
					name, got, got+missed, buf.Bytes()/1024, buf.LateDiscard, buf.Overflowed)
			}

			// Wait out the initial delay, then consume at full rate.
			th.Sleep(m.CRAS.Config().InitialDelay + 50*time.Millisecond)
			phase("30 fps (full rate)", 30, 90)

			// Drop to 10 fps: every third frame; the server is not told.
			phase("10 fps (QoS degraded)", 10, 30)

			// Pause: crs_stop freezes the clock and pre-fetching.
			h.Stop(th)
			th.Sleep(2 * time.Second)
			fmt.Printf("%-28s clock frozen at %v\n", "paused 2s (crs_stop)", h.LogicalNow().Round(time.Millisecond))
			h.Start(th)
			th.Sleep(m.CRAS.Config().InitialDelay + 50*time.Millisecond)
			phase("resumed at 30 fps", 30, 60)

			// Seek to the 40-second mark: stop, reposition, restart — the
			// remote-control pattern, which gives the pipeline its initial
			// delay to refill at the new position.
			h.Stop(th)
			if err := h.Seek(th, 40*time.Second); err != nil {
				panic(err)
			}
			h.Start(th)
			th.Sleep(m.CRAS.Config().InitialDelay + 50*time.Millisecond)
			fmt.Printf("%-28s clock now at %v\n", "seek to 40s (crs_seek)", h.LogicalNow().Round(time.Millisecond))
			phase("after seek, 30 fps", 30, 60)

			// Fast-forward: retrieval itself doubles (readmission runs).
			if err := h.SetRate(th, 2.0); err != nil {
				panic(err)
			}
			phase("2x fast-forward (60 fps)", 60, 120)

			h.Close(th)
		})
	})
	machine.Run(3 * time.Minute)
	if err := machine.Err(); err != nil {
		panic(err)
	}
}
