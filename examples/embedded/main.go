// Embedded configuration: Figure 5's right-hand setup, where CRAS is
// linked with the application and no Unix server runs at all — the
// arrangement the paper proposes for continuous media in embedded systems.
// The application resolves media files against the file system directly
// (DirectResolver), and the only threads on the machine are CRAS's five
// and the application's own.
package main

import (
	"fmt"
	"time"

	cras "repro"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/ufs"
)

func main() {
	eng := cras.NewEngine(21)
	geo, par := cras.ST32550N()
	dsk := cras.NewDisk(eng, "sd0", geo, par)
	if _, err := cras.FormatFS(dsk, cras.FSOptions{}); err != nil {
		panic(err)
	}

	movie := cras.MPEG1().Generate("/anthem", 8*time.Second)

	eng.Spawn("boot", func(p *cras.Proc) {
		fs, err := cras.MountFS(p, dsk, cras.FSOptions{})
		if err != nil {
			panic(err)
		}
		if err := cras.StoreMovie(p, fs, "/anthem", movie); err != nil {
			panic(err)
		}
		fs.Sync(p)

		k := cras.NewKernel(eng)
		// No Unix server: CRAS resolves against the linked-in file system.
		server := core.NewServerWith(k, dsk, core.DirectResolver(fs), cras.Config{})

		k.NewThread("appliance", cras.PrioRTLow, 0, func(th *cras.Thread) {
			// The appliance reads its own control file, again without any
			// server in the way.
			info, err := loadControlDirect(th, fs, "/anthem")
			if err != nil {
				panic(err)
			}
			h, err := server.Open(th, info, "/anthem", cras.OpenOptions{})
			if err != nil {
				panic(err)
			}
			h.Start(th)
			got := 0
			for i := range info.Chunks {
				c := info.Chunks[i]
				due := h.ClockStartsAt(c.Timestamp)
				if k.Now() < due {
					th.SleepUntil(due)
				}
				if _, ok := h.Get(c.Timestamp); ok {
					got++
				}
			}
			fmt.Printf("embedded appliance played %d/%d frames with no Unix server on the machine\n",
				got, len(info.Chunks))
			st := server.Stats()
			fmt.Printf("server: %d cycles, %d reads, %d deadline misses\n",
				st.Cycles, st.ReadsIssued, st.IODeadlineMiss)
		})
	})
	eng.RunUntil(20 * time.Second)
}

// loadControlDirect reads a control file straight off the file system from
// the calling thread — the embedded replacement for media.Load's
// Unix-server path.
func loadControlDirect(th *cras.Thread, fs *ufs.FileSystem, path string) (*media.StreamInfo, error) {
	p := th.Proc()
	f, err := fs.Open(p, media.ControlPath(path))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, f.Size(p))
	if _, err := f.ReadAt(p, buf, 0); err != nil {
		return nil, err
	}
	return media.DecodeControl(path, buf)
}
