// Quickstart: boot a complete simulated machine, store one MPEG1-class
// movie on the Unix file system, open it through CRAS, and play it back at
// its natural rate — the minimal end-to-end path through the library.
package main

import (
	"fmt"
	"time"

	cras "repro"
)

func main() {
	// A 10-second, 1.5 Mb/s movie — the paper's benchmark stream.
	movie := cras.MPEG1().Generate("/movies/clip", 10*time.Second)

	var stats cras.PlayerStats
	machine := cras.BuildLab(cras.LabSetup{
		Seed:   42,
		Movies: []cras.LabMovie{{Path: "/movies/clip", Info: movie}},
	}, func(m *cras.Lab) {
		// The player opens the stream on CRAS (running the admission
		// test), starts the logical clock, and fetches each frame from the
		// time-driven shared buffer at its due time.
		cras.CRASPlayer(m.Kernel, m.CRAS, movie, "/movies/clip",
			cras.OpenOptions{}, cras.PlayerConfig{}, &stats)
	})
	machine.Run(15 * time.Second) // virtual time; returns in milliseconds of real time
	if err := machine.Err(); err != nil {
		panic(err)
	}

	s := cras.Summarize(stats.Delays.Values())
	fmt.Printf("played %d/%d frames (%d lost)\n", stats.Obtained, stats.Frames, stats.Lost)
	fmt.Printf("frame delay: mean %.3f ms, max %.3f ms\n", 1000*s.Mean, 1000*s.Max)
	fmt.Printf("throughput: %.2f MB/s (stream rate %.2f MB/s)\n",
		stats.Throughput()/1e6, movie.AvgRate()/1e6)

	st := machine.CRAS.Stats()
	fmt.Printf("server: %d scheduler cycles, %d disk reads, %d deadline misses\n",
		st.Cycles, st.ReadsIssued, st.IODeadlineMiss)
}
