// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each iteration runs a complete (scaled-down) simulated experiment;
// the headline result is attached as a custom metric so
// `go test -bench=. -benchmem` prints the reproduced numbers alongside the
// runtime cost of regenerating them. cmd/crasbench runs the full-scale
// sweeps.
package cras_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/media"
)

const benchSeconds = 10 * time.Second

// BenchmarkFig6CRASThroughput reproduces Figure 6's CRAS curve at ten
// 1.5 Mb/s streams with background disk load. Metric: delivered on-time
// MB/s (paper shape: tracks the offered load, unaffected by the cats).
func BenchmarkFig6CRASThroughput(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 10, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Load: true, Force: true,
		})
		tput = r.OnTimeThroughput()
	}
	b.ReportMetric(tput/1e6, "MBps")
}

// BenchmarkFig6UFSThroughput is the baseline curve: the same ten streams
// through the Unix file system under load. Metric: on-time MB/s (paper
// shape: collapses).
func BenchmarkFig6UFSThroughput(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 10, Profile: media.MPEG1(),
			Duration: benchSeconds, Load: true,
		})
		tput = r.OnTimeThroughput()
	}
	b.ReportMetric(tput/1e6, "MBps")
}

// BenchmarkFig7DelayCRAS reproduces Figure 7's CRAS trace: one stream under
// disk load. Metric: worst frame delay in milliseconds (paper shape: small).
func BenchmarkFig7DelayCRAS(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 1, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Load: true,
		})
		worst = r.Players[0].Delays.Summary().Max
	}
	b.ReportMetric(worst*1000, "max-ms")
}

// BenchmarkFig7DelayUFS is the UFS trace of Figure 7. Metric: worst frame
// delay in milliseconds (paper shape: much larger than CRAS).
func BenchmarkFig7DelayUFS(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 1, Profile: media.MPEG1(),
			Duration: benchSeconds, Load: true,
		})
		worst = r.Players[0].Delays.Summary().Max
	}
	b.ReportMetric(worst*1000, "max-ms")
}

// BenchmarkFig8Admission reproduces one Figure 8 point: admission accuracy
// at ten 1.5 Mb/s streams. Metric: average actual/calculated ratio in
// percent (paper shape: pessimistic, well under 100).
func BenchmarkFig8Admission(b *testing.B) {
	cfg := expt.Fig8Config()
	cfg.StreamCounts = []int{10}
	cfg.Duration = benchSeconds
	var avg float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		avg = expt.RunAccuracy(cfg).Points[0].NoLoadAvg
	}
	b.ReportMetric(avg, "ratio-%")
}

// BenchmarkFig9Admission reproduces one Figure 9 point: accuracy at five
// 6 Mb/s streams under load. Metric: average ratio in percent (paper
// shape: higher than Figure 8's, approaching ~70-80%).
func BenchmarkFig9Admission(b *testing.B) {
	cfg := expt.Fig9Config()
	cfg.StreamCounts = []int{5}
	cfg.Duration = benchSeconds
	var avg float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		avg = expt.RunAccuracy(cfg).Points[0].LoadAvg
	}
	b.ReportMetric(avg, "ratio-%")
}

// BenchmarkFig10FixedPriority reproduces Figure 10's fixed-priority trace:
// one stream against CPU hogs. Metric: worst delay in ms (paper shape: ~0).
func BenchmarkFig10FixedPriority(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := expt.RunFig10(expt.Fig10Config{Seed: int64(i + 1), Duration: benchSeconds})
		worst = res.FixedPriority.Summary().Max
	}
	b.ReportMetric(worst*1000, "max-ms")
}

// BenchmarkFig10RoundRobin is the round-robin trace. Metric: worst delay in
// ms plus lost frames (paper shape: delays explode).
func BenchmarkFig10RoundRobin(b *testing.B) {
	var worst float64
	var lost int
	for i := 0; i < b.N; i++ {
		res := expt.RunFig10(expt.Fig10Config{Seed: int64(i + 1), Duration: benchSeconds})
		worst = res.RoundRobin.Summary().Max
		lost = res.RRLost
	}
	b.ReportMetric(worst*1000, "max-ms")
	b.ReportMetric(float64(lost), "lost-frames")
}

// BenchmarkFig12SeekCurve measures the seek curve and its linear fit.
// Metric: the fitted full-stroke seek in ms (paper: 17 ms).
func BenchmarkFig12SeekCurve(b *testing.B) {
	var tmax time.Duration
	for i := 0; i < b.N; i++ {
		tmax = expt.RunFig12(int64(i + 1)).TseekMax
	}
	b.ReportMetric(float64(tmax)/1e6, "Tseekmax-ms")
}

// BenchmarkTable4DiskParams measures the full parameter set of Table 4.
// Metric: the timed transfer rate in MB/s (paper: 6.5).
func BenchmarkTable4DiskParams(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		d = expt.RunTable4(int64(i + 1)).MeasuredD
	}
	b.ReportMetric(d/1e6, "MBps")
}

// BenchmarkDelaySweep3s reproduces the Section 3.1 claim: 25 streams at a
// 3 s initial delay. Metric: fraction of the disk rate delivered on time
// (paper: ~70%).
func BenchmarkDelaySweep3s(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res := expt.RunDelaySweep(int64(i+1), 25, benchSeconds,
			[]time.Duration{3 * time.Second})
		frac = res.Points[0].Fraction
	}
	b.ReportMetric(frac*100, "%disk")
}

// BenchmarkEngineCycle measures the scheduler's per-cycle cost: wall time
// and heap allocations per simulated scheduler interval over a standard
// ten-stream run. This is the burn-down meter for the hotalloc findings in
// crasvet.baseline.json — fixes there should move allocs/cycle down.
// scripts/regen-bench.sh records the result in BENCH_engine.json (not
// diffed by CI: wall times are machine-dependent).
func BenchmarkEngineCycle(b *testing.B) {
	var nsPerCycle, allocsPerCycle float64
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 10, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Load: true, Force: true,
		})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if cycles := r.CRASStats.Cycles; cycles > 0 {
			nsPerCycle = float64(elapsed.Nanoseconds()) / float64(cycles)
			allocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(cycles)
		}
	}
	b.ReportMetric(nsPerCycle, "ns/cycle")
	b.ReportMetric(allocsPerCycle, "allocs/cycle")
}

// ---- ablations of DESIGN.md's called-out choices ----

// BenchmarkAblationNoRTQueue removes the paper's split disk queue: CRAS
// reads ride the normal queue together with a backup scanner that keeps
// eight raw requests in flight. Metric: on-time MB/s at ten streams —
// compare against BenchmarkAblationRTQueueVsScanner, which faces the same
// scanner with the split queue intact.
func BenchmarkAblationNoRTQueue(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 10, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Scanner: true, Force: true,
			NoRTQueue: true,
		})
		tput = r.OnTimeThroughput()
	}
	b.ReportMetric(tput/1e6, "MBps")
}

// BenchmarkAblationRTQueueVsScanner is the control for the queue ablation:
// same ten streams and the same scanner, with the real-time queue doing
// its job.
func BenchmarkAblationRTQueueVsScanner(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 10, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Scanner: true, Force: true,
		})
		tput = r.OnTimeThroughput()
	}
	b.ReportMetric(tput/1e6, "MBps")
}

// BenchmarkAblationSmallReads caps single reads at 32 KB instead of 256 KB,
// undoing the paper's large-read optimization. Metric: delivered on-time
// MB/s at a load where the full system keeps up.
func BenchmarkAblationSmallReads(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 20, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Force: true,
			InitialDelay: 3 * time.Second, MaxRead: 32 << 10,
		})
		tput = r.OnTimeThroughput()
	}
	b.ReportMetric(tput/1e6, "MBps")
}

// BenchmarkAblationNoAdmission removes admission control: 25 streams all
// force-open at a 1 s delay (the disk sustains ~19). Metric: fraction of
// offered bytes delivered on time — compare against admitted operation,
// where every accepted stream is delivered in full.
func BenchmarkAblationNoAdmission(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r := expt.RunPlayback(expt.PlaybackConfig{
			Seed: int64(i + 1), Streams: 25, Profile: media.MPEG1(),
			Duration: benchSeconds, UseCRAS: true, Force: true,
		})
		offered := 25 * 187500.0
		frac = r.OnTimeThroughput() / offered
	}
	b.ReportMetric(frac*100, "%offered")
}

// BenchmarkAblationFragmentedLayout plays on the untuned rotdelay layout —
// what happens without the paper's tunefs contiguity tuning.
func BenchmarkAblationFragmentedLayout(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		res := expt.RunFragmentation(int64(i+1), 6, benchSeconds)
		tput = res.FragThroughput
	}
	b.ReportMetric(tput/1e6, "MBps")
}
