// Command crasbench regenerates the paper's evaluation: every table and
// figure of Section 3, plus the Section 3.2 problem demonstrations and the
// constant-rate recording extension. Results print as plain-text tables
// whose rows correspond to the paper's plotted series.
//
// Usage:
//
//	crasbench -all                # everything (several minutes of CPU)
//	crasbench -fig 6              # one figure (6, 7, 8, 9, 10, 12)
//	crasbench -table 4            # Table 4
//	crasbench -extra vbr          # vbr | frag | record | delaysweep | faults | cache | overload | stripe | parity | multicast | cluster | vcr
//	crasbench -fig 6 -quick       # smaller sweeps for a fast look
//	crasbench -fig 6 -delay 3s    # the Section 3.1 longer-initial-delay run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expt"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (6, 7, 8, 9, 10, 12)")
		table    = flag.Int("table", 0, "table to regenerate (4)")
		extra    = flag.String("extra", "", "extra experiment: vbr | frag | record | delaysweep | interval | faults | cache | overload | stripe | parity | multicast | cluster | vcr")
		jsonOut  = flag.String("json", "", "also write the parity sweep result as JSON to this file")
		mjsonOut = flag.String("mcastjson", "", "also write the multicast sweep result as JSON to this file")
		cjsonOut = flag.String("clusterjson", "", "also write the cluster sweep result as JSON to this file")
		vjsonOut = flag.String("vcrjson", "", "also write the VCR sweep result as JSON to this file")
		all      = flag.Bool("all", false, "run everything")
		quick    = flag.Bool("quick", false, "smaller sweeps and shorter runs")
		seed     = flag.Int64("seed", 1, "simulation seed")
		duration = flag.Duration("duration", 0, "override run duration (0 = experiment default)")
		delay    = flag.Duration("delay", time.Second, "initial delay for figure 6")
	)
	flag.Parse()

	ran := false
	if *all || *fig == 6 {
		runFig6(*seed, *quick, *duration, *delay)
		ran = true
	}
	if *all || *fig == 7 {
		cfg := expt.Fig7Config{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 12 * time.Second
		}
		fmt.Println(expt.RunFig7(cfg).Table())
		ran = true
	}
	if *all || *fig == 8 {
		runAccuracy(expt.Fig8Config(), *seed, *quick, *duration)
		ran = true
	}
	if *all || *fig == 9 {
		runAccuracy(expt.Fig9Config(), *seed, *quick, *duration)
		ran = true
	}
	if *all || *fig == 10 {
		cfg := expt.Fig10Config{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 10 * time.Second
		}
		fmt.Println(expt.RunFig10(cfg).Table())
		ran = true
	}
	if *all || *fig == 12 {
		fmt.Println(expt.RunFig12(*seed).Table())
		ran = true
	}
	if *all || *table == 4 {
		fmt.Println(expt.RunTable4(*seed).Table())
		ran = true
	}
	if *all || *extra == "vbr" {
		fmt.Println(expt.RunVBR(*seed, *duration).Table())
		ran = true
	}
	if *all || *extra == "frag" {
		fmt.Println(expt.RunFragmentation(*seed, 0, *duration).Table())
		ran = true
	}
	if *all || *extra == "record" {
		fmt.Println(expt.RunRecord(*seed, 0, *duration).Table())
		ran = true
	}
	if *all || *extra == "delaysweep" {
		fmt.Println(expt.RunDelaySweep(*seed, 0, *duration, nil).Table())
		ran = true
	}
	if *all || *extra == "interval" {
		fmt.Println(expt.RunIntervalSweep(*seed, nil, *duration).Table())
		ran = true
	}
	if *all || *extra == "faults" {
		cfg := expt.FaultSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 10 * time.Second
			cfg.Probs = []float64{0, 0.02, 0.10}
		}
		fmt.Println(expt.RunFaultSweep(cfg).Table())
		ran = true
	}
	if *all || *extra == "cache" {
		cfg := expt.CacheSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 10 * time.Second
			cfg.Budgets = []int64{0, 16 << 20}
		}
		fmt.Println(expt.RunCacheSweep(cfg).Table())
		ran = true
	}
	if *all || *extra == "overload" {
		cfg := expt.OverloadSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 8 * time.Second
			cfg.Rates = []float64{4, 64}
		}
		fmt.Println(expt.RunOverloadSweep(cfg).Table())
		ran = true
	}
	if *all || *extra == "stripe" {
		cfg := expt.StripeSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 8 * time.Second
		}
		fmt.Println(expt.RunStripeSweep(cfg).Table())
		ran = true
	}
	if *all || *extra == "parity" {
		cfg := expt.ParitySweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 8 * time.Second
		}
		res := expt.RunParitySweep(cfg)
		fmt.Println(res.Table())
		if *jsonOut != "" {
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
		}
		ran = true
	}
	if *all || *extra == "multicast" {
		cfg := expt.MulticastSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 10 * time.Second
		}
		res := expt.RunMulticastSweep(cfg)
		fmt.Println(res.Table())
		if *mjsonOut != "" {
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*mjsonOut, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
		}
		ran = true
	}
	if *all || *extra == "cluster" {
		cfg := expt.ClusterSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 8 * time.Second
		}
		res := expt.RunClusterSweep(cfg)
		fmt.Println(res.Table())
		if *cjsonOut != "" {
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*cjsonOut, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
		}
		ran = true
	}
	if *all || *extra == "vcr" {
		cfg := expt.VCRSweepConfig{Seed: *seed, Duration: *duration}
		if *quick && *duration == 0 {
			cfg.Duration = 8 * time.Second
		}
		res := expt.RunVCRSweep(cfg)
		fmt.Println(res.Table())
		if *vjsonOut != "" {
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*vjsonOut, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "crasbench:", err)
				os.Exit(1)
			}
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runFig6(seed int64, quick bool, duration, delay time.Duration) {
	cfg := expt.Fig6Config{Seed: seed, Duration: duration, InitialDelay: delay}
	if quick {
		cfg.StreamCounts = []int{1, 5, 9, 13, 17, 21, 25}
		if duration == 0 {
			cfg.Duration = 15 * time.Second
		}
	}
	res := expt.RunFig6(cfg)
	fmt.Println(res.Table())
	fmt.Printf("peak CRAS throughput: %.0f%% of the disk rate (paper: 55%% at 1s delay, 70%% at 3s)\n\n",
		100*res.PeakCRASFraction())
}

func runAccuracy(cfg expt.AccuracyConfig, seed int64, quick bool, duration time.Duration) {
	cfg.Seed = seed
	cfg.Duration = duration
	if quick {
		if len(cfg.StreamCounts) > 5 {
			cfg.StreamCounts = []int{1, 4, 8, 14, 20}
		}
		if duration == 0 {
			cfg.Duration = 12 * time.Second
		}
	}
	fmt.Println(expt.RunAccuracy(cfg).Table())
}
