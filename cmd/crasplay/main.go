// Command crasplay mounts a volume prepared by mkcmfs and plays one or more
// movies through CRAS (or through the Unix file system with -ufs, for
// comparison), printing per-frame delay statistics and server counters —
// a command-line QtPlay.
//
//	crasplay -disk cm.img /m00
//	crasplay -disk cm.img -ufs -load /m00       # the paper's baseline, with cats
//	crasplay -disk cm.img /m00 /m01 /m02        # several streams at once
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crasplay: ")
	var (
		img    = flag.String("disk", "cm.img", "disk image from mkcmfs")
		useUFS = flag.Bool("ufs", false, "play through the Unix file system instead of CRAS")
		load   = flag.Bool("load", false, "run two background cat readers")
		delay  = flag.Duration("delay", time.Second, "initial delay")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: crasplay [-flags] /movie [/movie ...]")
		os.Exit(2)
	}

	f, err := os.Open(*img)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(*seed)
	d, err := disk.LoadImage(eng, "sd0", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	stats := make([]*workload.PlayerStats, len(paths))
	for i := range stats {
		stats[i] = &workload.PlayerStats{}
	}
	var maxDur sim.Time
	var cras *core.Server
	var setupErr error
	eng.Spawn("boot", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, d, ufs.Options{})
		if err != nil {
			setupErr = err
			return
		}
		k := rtm.NewKernel(eng)
		unix := ufs.NewServer(k, fs, rtm.PrioTS, 0)
		if !*useUFS {
			cras = core.NewServer(k, d, unix, core.Config{
				InitialDelay: *delay,
				BufferBudget: 64 << 20,
				Params:       core.MeasureAdmissionParams(d, 64<<10),
			})
		}
		if *load {
			// Cats chew on the first movie's data file.
			workload.BackgroundReader(k, unix, paths[0], rtm.PrioTS, 0)
			workload.BackgroundReader(k, unix, paths[0], rtm.PrioTS, 0)
		}
		for i, path := range paths {
			info, err := media.LoadFS(pr, fs, path)
			if err != nil {
				// No control file: maybe a container — play its first
				// (video) track.
				if tracks, cerr := loadContainerFS(pr, fs, path); cerr == nil && len(tracks) > 0 {
					info = tracks[0].Info
				} else {
					setupErr = fmt.Errorf("%s: %w", path, err)
					return
				}
			}
			if info.TotalDuration() > maxDur {
				maxDur = info.TotalDuration()
			}
			if *useUFS {
				workload.UFSPlayer(k, unix, info, path, *delay, workload.PlayerConfig{}, stats[i])
			} else {
				workload.CRASPlayer(k, cras, info, path, core.OpenOptions{}, workload.PlayerConfig{}, stats[i])
			}
		}
	})
	eng.RunUntil(maxDur + *delay + 30*time.Second)
	if setupErr != nil {
		log.Fatal(setupErr)
	}

	tbl := metrics.NewTable("playback results", "movie", "frames", "obtained", "lost",
		"mean delay", "p99 delay", "max delay", "throughput")
	for i, path := range paths {
		s := stats[i].Delays.Summary()
		tbl.AddRow(path, stats[i].Frames, stats[i].Obtained, stats[i].Lost,
			fmt.Sprintf("%.2f ms", 1000*s.Mean),
			fmt.Sprintf("%.2f ms", 1000*s.P99),
			fmt.Sprintf("%.2f ms", 1000*s.Max),
			metrics.MBps(stats[i].Throughput()))
	}
	fmt.Println(tbl)
	if cras != nil {
		st := cras.Stats()
		fmt.Printf("server: %d cycles, %d reads, %d bytes, %d admission rejects, %d I/O deadline misses\n",
			st.Cycles, st.ReadsIssued, st.BytesRead, st.AdmissionRejects, st.IODeadlineMiss)
	}
}

// loadContainerFS reads a container index directly off the file system
// (crasplay's boot process has no Unix server client yet at probe time).
func loadContainerFS(pr *sim.Proc, fs *ufs.FileSystem, path string) ([]media.Track, error) {
	f, err := fs.Open(pr, path)
	if err != nil {
		return nil, err
	}
	n := f.Size(pr)
	if n > 1<<20 {
		n = 1 << 20
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(pr, buf, 0); err != nil {
		return nil, err
	}
	return media.DecodeContainerIndex(path, buf)
}
