// Command crasvet runs the CRAS determinism and event-loop analyzers
// (internal/analysis) alongside the standard go vet passes, and exits
// non-zero on any unbaselined finding so CI can gate on it.
//
// Usage:
//
//	crasvet [-novet] [-list] [-json] [-baseline file] [packages]
//
// With no package patterns, it checks ./.... All matched packages are
// analyzed as one suite: per-package facts (wrapped sentinels, confined
// fields) and the thread-reachability call graph span the whole module, so
// a wrap in internal/media can flag a comparison in internal/ufs.
//
// Findings print as
//
//	file:line:col: [analyzer] message
//
// or, with -json, as a machine-readable report on stdout:
//
//	{"version":1,"findings":[{"analyzer":...,"file":...,"line":...,"col":...,"message":...}]}
//
// A finding can be sanctioned two ways. Permanently, with a directive
// comment on the same line or the line above:
//
//	//crasvet:allow <analyzer>[,<analyzer>...] -- reason
//
// Or temporarily, via the baseline: a JSON report (same format -json
// emits) listing known findings to tolerate while they are burned down.
// Baseline entries match on (analyzer, file, message) — line numbers are
// ignored so unrelated edits don't invalidate the file. By default
// crasvet.baseline.json is used when it exists; -baseline overrides the
// path and -baseline none disables baselining (use that when regenerating
// the file). Stale entries — baselined findings that no longer occur — are
// reported on stderr so the baseline shrinks instead of rotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// reportVersion is bumped if the JSON schema changes incompatibly.
const reportVersion = 1

// defaultBaseline is picked up from the working directory when present and
// no -baseline flag is given.
const defaultBaseline = "crasvet.baseline.json"

// finding is one diagnostic in the JSON report. The same shape serves as a
// baseline entry: Line and Col are informational there and ignored when
// matching.
type finding struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// report is the top-level JSON document, for both -json output and the
// baseline file — crasvet -json -baseline none > crasvet.baseline.json
// round-trips.
type report struct {
	Version  int       `json:"version"`
	Findings []finding `json:"findings"`
}

// baselineKey ignores position-within-file so the baseline survives
// unrelated edits.
func baselineKey(f finding) string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func main() {
	novet := flag.Bool("novet", false, "skip running the standard `go vet` passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit the findings as a JSON report on stdout")
	baselinePath := flag.String("baseline", "", "baseline `file` of tolerated findings (default crasvet.baseline.json if present; \"none\" disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crasvet [-novet] [-list] [-json] [-baseline file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks CRAS determinism invariants; see internal/analysis.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	vetFailed := false

	// Standard vet passes first: crasvet is a superset of go vet.
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stderr // keep stdout clean for -json
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fatalf("crasvet: %v", err)
	}
	typeErrors := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "crasvet: type error in %s: %v\n", pkg.Path, terr)
			typeErrors = true
		}
	}
	if typeErrors {
		os.Exit(2)
	}

	// One suite over every loaded package: facts and the call graph are
	// module-wide, which is the whole point of the interprocedural
	// analyzers.
	suite := analysis.NewSuite(pkgs)
	diags, err := suite.Run(analysis.All()...)
	if err != nil {
		fatalf("crasvet: %v", err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("crasvet: %v", err)
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}

	baseline, baselineFile := loadBaseline(*baselinePath)
	newCount, staleCount := applyBaseline(findings, baseline)

	if *jsonOut {
		out := report{Version: reportVersion, Findings: findings}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("crasvet: encoding report: %v", err)
		}
	} else {
		for _, f := range findings {
			if f.Baselined {
				continue
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}

	baselined := len(findings) - newCount
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "crasvet: %d finding(s) tolerated by baseline %s\n", baselined, baselineFile)
	}
	if staleCount > 0 {
		fmt.Fprintf(os.Stderr, "crasvet: %d stale baseline entr(y/ies) in %s — findings fixed; shrink the baseline\n", staleCount, baselineFile)
	}
	if newCount > 0 {
		fmt.Fprintf(os.Stderr, "crasvet: %d finding(s)\n", newCount)
	}
	if vetFailed || newCount > 0 {
		os.Exit(1)
	}
}

// loadBaseline resolves the baseline flag: explicit path, "none"/"" to
// disable (the empty default only disables when crasvet.baseline.json is
// absent), or the conventional file when present. Returns counts of
// tolerated (analyzer, file, message) keys.
func loadBaseline(path string) (map[string]int, string) {
	switch path {
	case "none":
		return nil, ""
	case "":
		if _, err := os.Stat(defaultBaseline); err != nil {
			return nil, ""
		}
		path = defaultBaseline
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("crasvet: reading baseline: %v", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fatalf("crasvet: parsing baseline %s: %v", path, err)
	}
	if r.Version != reportVersion {
		fatalf("crasvet: baseline %s has version %d, want %d — regenerate it", path, r.Version, reportVersion)
	}
	keys := map[string]int{}
	for _, f := range r.Findings {
		keys[baselineKey(f)]++
	}
	return keys, path
}

// applyBaseline marks tolerated findings in place and reports how many new
// findings remain and how many baseline entries went unused (fixed).
func applyBaseline(findings []finding, baseline map[string]int) (newCount, staleCount int) {
	for i := range findings {
		k := baselineKey(findings[i])
		if baseline[k] > 0 {
			baseline[k]--
			findings[i].Baselined = true
		} else {
			newCount++
		}
	}
	for _, n := range baseline {
		staleCount += n
	}
	return newCount, staleCount
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
