// Command crasvet runs the CRAS determinism and event-loop analyzers
// (internal/analysis) alongside the standard go vet passes, and exits
// non-zero on any finding so CI can gate on it.
//
// Usage:
//
//	crasvet [-novet] [-list] [packages]
//
// With no package patterns, it checks ./.... Findings print as
//
//	file:line:col: [analyzer] message
//
// and can be sanctioned in source with a directive comment on the same line
// or the line above:
//
//	//crasvet:allow <analyzer>[,<analyzer>...] -- reason
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	novet := flag.Bool("novet", false, "skip running the standard `go vet` passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crasvet [-novet] [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks CRAS determinism invariants; see internal/analysis.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false

	// Standard vet passes first: crasvet is a superset of go vet.
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crasvet: %v\n", err)
		os.Exit(2)
	}

	count := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "crasvet: type error in %s: %v\n", pkg.Path, terr)
			failed = true
		}
		for _, a := range analysis.All() {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			diags, err := pkg.Run(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crasvet: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Println(d)
				count++
			}
		}
	}

	if count > 0 {
		fmt.Fprintf(os.Stderr, "crasvet: %d finding(s)\n", count)
	}
	if failed || count > 0 {
		os.Exit(1)
	}
}
