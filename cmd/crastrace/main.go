// Command crastrace runs a short CRAS playback with the engine tracer on
// and prints the event timeline: every disk operation (queue, kind,
// cylinder, seek/rotation/service decomposition), every scheduler cycle
// (streams, operations, bytes, chunks stamped), any deadline events, and —
// with -share — the interval cache's attach/fallback/promotion/eviction
// decisions. The tool to reach for when a configuration misbehaves.
//
//	crastrace -streams 3 -seconds 4
//	crastrace -streams 3 -seconds 4 -load         # add the cats
//	crastrace -grep cycle                          # only scheduler cycles
//	crastrace -share -streams 3 -grep cache        # cache lifecycle events
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	cras "repro"
)

func main() {
	var (
		streams = flag.Int("streams", 2, "simultaneous streams")
		seconds = flag.Int("seconds", 3, "playback duration")
		load    = flag.Bool("load", false, "add two background cat readers")
		share   = flag.Bool("share", false, "all streams view one movie a second apart, interval cache on")
		grep    = flag.String("grep", "", "only print lines containing this substring")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var movies []cras.LabMovie
	infos := make([]*cras.StreamInfo, *streams)
	for i := range infos {
		if *share && i > 0 {
			infos[i] = infos[0]
			continue
		}
		path := fmt.Sprintf("/m%02d", i)
		infos[i] = cras.MPEG1().Generate(path, time.Duration(*seconds)*time.Second)
		movies = append(movies, cras.LabMovie{Path: path, Info: infos[i]})
	}
	bulk := cras.MPEG1().Generate("/bulk", 10*time.Second)
	movies = append(movies, cras.LabMovie{Path: "/bulk", Info: bulk})

	stats := make([]*cras.PlayerStats, *streams)
	setup := cras.LabSetup{
		Seed:   *seed,
		Movies: movies,
	}
	if *share {
		setup.CRAS = cras.Config{CacheBudget: 32 << 20}
	}
	m := cras.BuildLab(setup, func(m *cras.Lab) {
		// Tracing starts after setup so mkfs noise stays out of the way.
		m.Eng.SetTracer(func(at cras.Time, format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if *grep != "" && !strings.Contains(line, *grep) {
				return
			}
			fmt.Printf("%12.6f  %s\n", at.Seconds(), line)
		})
		if *load {
			cras.BackgroundReader(m.Kernel, m.Unix, "/bulk", cras.PrioTS, 0)
			cras.BackgroundReader(m.Kernel, m.Unix, "/bulk", cras.PrioTS, 0)
		}
		for i := 0; i < *streams; i++ {
			stats[i] = &cras.PlayerStats{}
			if *share {
				// Staggered viewers of movie 0: each after the first should
				// attach to the leader's interval and play from its pins.
				i := i
				m.Kernel.NewThread(fmt.Sprintf("viewer%d", i), cras.PrioRTLow, 0, func(th *cras.Thread) {
					if i > 0 {
						th.Sleep(time.Duration(i) * time.Second)
					}
					cras.CRASPlayer(m.Kernel, m.CRAS, infos[i], "/m00",
						cras.OpenOptions{}, cras.PlayerConfig{}, stats[i])
				})
				continue
			}
			cras.CRASPlayer(m.Kernel, m.CRAS, infos[i], fmt.Sprintf("/m%02d", i),
				cras.OpenOptions{}, cras.PlayerConfig{}, stats[i])
		}
	})
	m.Run(time.Duration(*seconds+6+boolInt(*share)*(*streams)) * time.Second)
	if err := m.Err(); err != nil {
		panic(err)
	}
	for i, st := range stats {
		fmt.Printf("# stream %d: %d/%d frames, %d lost\n", i, st.Obtained, st.Frames, st.Lost)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
