// Command crastrace runs a short CRAS playback with the engine tracer on
// and prints the event timeline: every disk operation (queue, kind,
// cylinder, seek/rotation/service decomposition), every scheduler cycle
// (streams, operations, bytes, chunks stamped), and any deadline events —
// the tool to reach for when a configuration misbehaves.
//
//	crastrace -streams 3 -seconds 4
//	crastrace -streams 3 -seconds 4 -load         # add the cats
//	crastrace -grep cycle                          # only scheduler cycles
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	cras "repro"
)

func main() {
	var (
		streams = flag.Int("streams", 2, "simultaneous streams")
		seconds = flag.Int("seconds", 3, "playback duration")
		load    = flag.Bool("load", false, "add two background cat readers")
		grep    = flag.String("grep", "", "only print lines containing this substring")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var movies []cras.LabMovie
	infos := make([]*cras.StreamInfo, *streams)
	for i := range infos {
		path := fmt.Sprintf("/m%02d", i)
		infos[i] = cras.MPEG1().Generate(path, time.Duration(*seconds)*time.Second)
		movies = append(movies, cras.LabMovie{Path: path, Info: infos[i]})
	}
	bulk := cras.MPEG1().Generate("/bulk", 10*time.Second)
	movies = append(movies, cras.LabMovie{Path: "/bulk", Info: bulk})

	stats := make([]*cras.PlayerStats, *streams)
	m := cras.BuildLab(cras.LabSetup{
		Seed:   *seed,
		Movies: movies,
	}, func(m *cras.Lab) {
		// Tracing starts after setup so mkfs noise stays out of the way.
		m.Eng.SetTracer(func(at cras.Time, format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if *grep != "" && !strings.Contains(line, *grep) {
				return
			}
			fmt.Printf("%12.6f  %s\n", at.Seconds(), line)
		})
		if *load {
			cras.BackgroundReader(m.Kernel, m.Unix, "/bulk", cras.PrioTS, 0)
			cras.BackgroundReader(m.Kernel, m.Unix, "/bulk", cras.PrioTS, 0)
		}
		for i := 0; i < *streams; i++ {
			stats[i] = &cras.PlayerStats{}
			cras.CRASPlayer(m.Kernel, m.CRAS, infos[i], fmt.Sprintf("/m%02d", i),
				cras.OpenOptions{}, cras.PlayerConfig{}, stats[i])
		}
	})
	m.Run(time.Duration(*seconds+6) * time.Second)
	if err := m.Err(); err != nil {
		panic(err)
	}
	for i, st := range stats {
		fmt.Printf("# stream %d: %d/%d frames, %d lost\n", i, st.Obtained, st.Frames, st.Lost)
	}
}
