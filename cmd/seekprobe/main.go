// Command seekprobe measures the simulated disk the way the paper's
// microbenchmarks measured the ST32550N: the seek curve across the stroke
// with its linear approximation (Figure 12) and the derived parameter set
// (Table 4). This is the calibration step whose outputs feed the CRAS
// admission test.
package main

import (
	"flag"
	"fmt"

	"repro/internal/expt"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	fmt.Println(expt.RunFig12(*seed).Table())
	fmt.Println(expt.RunTable4(*seed).Table())
}
