// Command craschaos runs the deterministic fault-injection campaign: seeded
// fault scenarios crossed with stream counts, each asserting the recovery
// engine's invariants (no expired chunk delivered, the scheduler never
// wedges, healthy streams lose nothing to a faulty peer). Every failure
// prints the scenario name and seed needed to replay it bit-for-bit.
//
// Usage:
//
//	craschaos                     # full campaign (46 scenarios)
//	craschaos -quick              # CI subset (one stream count per kind)
//	craschaos -seed 7             # re-derive the campaign from another seed
//	craschaos -only stall         # scenarios whose name contains "stall"
//	craschaos -list               # print scenario names and exit
//	craschaos -v                  # per-scenario stats even on success
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "campaign base seed; scenario seeds derive from it")
		quick   = flag.Bool("quick", false, "run the CI subset")
		only    = flag.String("only", "", "run only scenarios whose name contains this substring")
		list    = flag.Bool("list", false, "list scenario names and exit")
		verbose = flag.Bool("v", false, "print per-scenario stats")
	)
	flag.Parse()

	scenarios := chaos.Campaign(*seed)
	if *quick {
		scenarios = chaos.Quick(*seed)
	}
	if *only != "" {
		var kept []chaos.Scenario
		for _, sc := range scenarios {
			if strings.Contains(sc.Name, *only) {
				kept = append(kept, sc)
			}
		}
		scenarios = kept
	}
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-28s seed=%d streams=%d\n", sc.Name, sc.Seed, sc.Streams)
		}
		return
	}
	if len(scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "craschaos: no scenarios match")
		os.Exit(2)
	}

	failed := 0
	for _, sc := range scenarios {
		res := chaos.Run(sc)
		if res.Failed() {
			failed++
			fmt.Printf("FAIL %-28s seed=%d streams=%d\n", sc.Name, sc.Seed, sc.Streams)
			for _, v := range res.Violations {
				fmt.Printf("     %s\n", v)
			}
			fmt.Printf("     faults=%+v retries=%d denied=%d cancels=%d ladder=%d %s\n",
				res.Faults, res.Server.ReadRetries, res.Server.RetriesDenied,
				res.Server.WatchdogCancels, len(res.Ladder), playerSummary(res))
			fmt.Printf("     replay: %sgo run ./cmd/craschaos -seed %d -only '%s'\n", sc.ReplayEnv(), *seed, sc.Name)
			continue
		}
		if *verbose {
			fmt.Printf("ok   %-28s seed=%d faults=%d retries=%d denied=%d cancels=%d ladder=%d %s\n",
				sc.Name, sc.Seed, res.Faults.Total(), res.Server.ReadRetries,
				res.Server.RetriesDenied, res.Server.WatchdogCancels, len(res.Ladder),
				playerSummary(res))
		} else {
			fmt.Printf("ok   %-28s seed=%d\n", sc.Name, sc.Seed)
		}
	}
	fmt.Printf("\n%d scenarios, %d failed\n", len(scenarios), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func playerSummary(res *chaos.Result) string {
	var b strings.Builder
	for i, p := range res.Players {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d/%d(%s)", p.Path, p.Obtained, p.Frames, p.Health)
	}
	return b.String()
}
