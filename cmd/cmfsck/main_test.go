package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// buildParityImages formats a small 4-member parity volume, stores one
// movie, optionally corrupts one sector of one member BEHIND the volume's
// back (bypassing the parity-maintaining PokeSector), and saves one image
// per member into dir. Returns the image paths.
func buildParityImages(t *testing.T, dir string, corruptRow int64) []string {
	t.Helper()
	const stripe = 64
	e := sim.NewEngine(3)
	g, p := disk.ST32550N()
	g.Cylinders, g.Heads = 64, 2
	members := make([]*disk.Disk, 4)
	for i := range members {
		members[i] = disk.New(e, "sd"+string(rune('0'+i)), g, p)
	}
	vol, err := disk.NewParityVolume("vol0", members, stripe)
	if err != nil {
		t.Fatalf("NewParityVolume: %v", err)
	}
	if _, err := ufs.Format(vol, ufs.Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	movie := media.MPEG1().Generate("/m", 2*time.Second)
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, vol, ufs.Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		if err := media.Store(pr, fs, "/m", movie); err != nil {
			t.Errorf("Store: %v", err)
			return
		}
		fs.Sync(pr)
	})
	e.Run()

	if corruptRow >= 0 {
		// Flip a byte in one sector of member 1, directly on the member disk:
		// the row no longer XORs to zero, exactly what a latent media error
		// under the parity rotation looks like.
		lba := corruptRow*stripe + 3
		sec := members[1].PeekSector(lba)
		sec[7] ^= 0x5a
		members[1].PokeSector(lba, sec)
	}

	paths := make([]string, len(members))
	for i, d := range members {
		paths[i] = filepath.Join(dir, "cm.img."+string(rune('0'+i)))
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatalf("create %s: %v", paths[i], err)
		}
		if err := d.SaveImage(f); err != nil {
			t.Fatalf("save %s: %v", paths[i], err)
		}
		f.Close()
	}
	return paths
}

// TestParityCheckClean pins the happy path: a freshly formatted parity
// volume round-trips through member images and passes both the parity pass
// and the file-system walk.
func TestParityCheckClean(t *testing.T) {
	paths := buildParityImages(t, t.TempDir(), -1)
	var out strings.Builder
	code, err := checkParity(&out, paths, 64)
	if err != nil {
		t.Fatalf("checkParity: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "every row XORs to zero") {
		t.Errorf("missing parity verdict in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("missing fsck verdict in output:\n%s", out.String())
	}
}

// TestParityCheckCorruption pins the detection path: one flipped byte on
// one member fails the check with the exact row named, before any
// file-system walk can claim the volume is clean.
func TestParityCheckCorruption(t *testing.T) {
	const badRow = 5
	paths := buildParityImages(t, t.TempDir(), badRow)
	var out strings.Builder
	code, err := checkParity(&out, paths, 64)
	if err != nil {
		t.Fatalf("checkParity: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "stripe row 5 does not XOR to zero") {
		t.Errorf("first inconsistent row not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "clean") {
		t.Errorf("corrupted volume reported clean:\n%s", out.String())
	}
}

// TestParityCheckArgErrors pins the argument contract: fewer than three
// member images is a hard error, not a degenerate pass.
func TestParityCheckArgErrors(t *testing.T) {
	var out strings.Builder
	if _, err := checkParity(&out, []string{"a", "b"}, 64); err == nil {
		t.Errorf("two-member parity check did not error")
	}
	if _, err := checkParity(&out, []string{"/nonexistent-a", "/nonexistent-b", "/nonexistent-c"}, 64); err == nil {
		t.Errorf("missing image files did not error")
	}
}
