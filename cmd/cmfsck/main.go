// Command cmfsck checks the consistency of a volume image produced by
// mkcmfs (or by any run that saved a disk image): it walks the directory
// tree, resolves every inode's block tree, and cross-checks the allocation
// bitmaps — the four invariants ufs.Check documents. Exit status 1 means
// problems were found.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfsck: ")
	img := flag.String("disk", "cm.img", "disk image to check")
	flag.Parse()

	f, err := os.Open(*img)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(0)
	d, err := disk.LoadImage(eng, "sd0", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var report *ufs.CheckReport
	eng.Spawn("fsck", func(p *sim.Proc) {
		fs, err := ufs.Mount(p, d, ufs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		report = fs.Check(p)
	})
	eng.Run()

	fmt.Printf("%s: %d files, %d directories, %d blocks used, %d free\n",
		*img, report.Files, report.Dirs, report.UsedBlocks, report.FreeBlocks)
	if report.OK() {
		fmt.Println("clean")
		return
	}
	for _, p := range report.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
	os.Exit(1)
}
