// Command cmfsck checks the consistency of a volume image produced by
// mkcmfs (or by any run that saved a disk image): it walks the directory
// tree, resolves every inode's block tree, and cross-checks the allocation
// bitmaps — the four invariants ufs.Check documents. Exit status 1 means
// problems were found.
//
// With -parity the positional arguments name one image per member of a
// rotating-parity volume. Before the file-system walk, every stripe row is
// verified to XOR to zero; the first inconsistent row fails the check and
// is printed with the member holding its parity unit:
//
//	cmfsck -parity -stripe 64 cm.img.0 cm.img.1 cm.img.2 cm.img.3
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfsck: ")
	img := flag.String("disk", "cm.img", "disk image to check (single-disk mode)")
	parity := flag.Bool("parity", false, "positional args are parity-volume member images; verify stripe rows before the walk")
	stripe := flag.Int64("stripe", 64, "stripe unit in sectors (parity mode; must match mkcmfs -stripe)")
	flag.Parse()

	var code int
	var err error
	if *parity {
		code, err = checkParity(os.Stdout, flag.Args(), *stripe)
	} else {
		code, err = checkSingle(os.Stdout, *img)
	}
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// checkSingle runs the classic single-image check: load, mount, walk.
func checkSingle(w io.Writer, img string) (int, error) {
	f, err := os.Open(img)
	if err != nil {
		return 0, err
	}
	eng := sim.NewEngine(0)
	d, err := disk.LoadImage(eng, "sd0", f)
	f.Close()
	if err != nil {
		return 0, err
	}
	return fsckWalk(w, eng, d, img)
}

// checkParity assembles a rotating-parity volume from one image per member,
// verifies that every stripe row XORs to zero, and then runs the same
// file-system walk over the logical volume. The parity pass runs first: a
// row that fails it can corrupt any file whose data lands there, so the
// walk's "clean" verdict would be meaningless.
func checkParity(w io.Writer, paths []string, stripe int64) (int, error) {
	if len(paths) < 3 {
		return 0, fmt.Errorf("parity mode needs at least 3 member images, got %d", len(paths))
	}
	eng := sim.NewEngine(0)
	members := make([]*disk.Disk, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		d, err := disk.LoadImage(eng, fmt.Sprintf("sd%d", i), f)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		members[i] = d
	}
	vol, err := disk.NewParityVolume("vol0", members, stripe)
	if err != nil {
		return 0, err
	}
	if row := vol.VerifyParity(); row >= 0 {
		fmt.Fprintf(w, "PROBLEM: stripe row %d does not XOR to zero (parity unit on member %d, %s)\n",
			row, vol.ParityDisk(row), paths[vol.ParityDisk(row)])
		return 1, nil
	}
	fmt.Fprintf(w, "parity: %d rows over %d members, every row XORs to zero\n",
		vol.Rows(), vol.NumDisks())
	return fsckWalk(w, eng, vol, fmt.Sprintf("%s (+%d members)", paths[0], len(paths)-1))
}

// fsckWalk mounts the device and runs the ufs invariant check, printing the
// report. Returns the process exit code.
func fsckWalk(w io.Writer, eng *sim.Engine, dev ufs.BlockDevice, label string) (int, error) {
	var report *ufs.CheckReport
	var mountErr error
	eng.Spawn("fsck", func(p *sim.Proc) {
		fs, err := ufs.Mount(p, dev, ufs.Options{})
		if err != nil {
			mountErr = err
			return
		}
		report = fs.Check(p)
	})
	eng.Run()
	if mountErr != nil {
		return 0, mountErr
	}

	fmt.Fprintf(w, "%s: %d files, %d directories, %d blocks used, %d free\n",
		label, report.Files, report.Dirs, report.UsedBlocks, report.FreeBlocks)
	if report.OK() {
		fmt.Fprintln(w, "clean")
		return 0, nil
	}
	for _, p := range report.Problems {
		fmt.Fprintf(w, "PROBLEM: %s\n", p)
	}
	return 1, nil
}
