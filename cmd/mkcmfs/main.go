// Command mkcmfs prepares a continuous-media volume: it formats a simulated
// ST32550N-class disk with the UFS layout (tuned for contiguous allocation,
// as the paper does with tunefs), lays out a set of movie files with their
// control tracks, and writes the result as a disk image that cmd/crasplay
// can mount. A layout report shows how contiguously each movie landed.
//
//	mkcmfs -o cm.img -movies 4 -seconds 30 -rate mpeg1
//	mkcmfs -o cm.img -movies 2 -rate mpeg2 -fragment   # untuned, rotdelay layout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mkcmfs: ")
	var (
		out       = flag.String("o", "cm.img", "output image path")
		nMovies   = flag.Int("movies", 4, "number of movies to create")
		seconds   = flag.Int("seconds", 30, "duration of each movie")
		rate      = flag.String("rate", "mpeg1", "stream profile: mpeg1 | mpeg2 | vbr")
		fragment  = flag.Bool("fragment", false, "use the untuned rotdelay layout (demonstrates Section 3.2)")
		container = flag.Bool("container", false, "store QuickTime-style containers (video+audio tracks per movie)")
		parity    = flag.Int("parity", 0, "stripe across N rotating-parity members (N>=3); writes one image per member as <out>.<i>")
		stripe    = flag.Int64("stripe", 64, "stripe unit in sectors (parity mode)")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	eng := sim.NewEngine(*seed)
	g, p := disk.ST32550N()
	var dev ufs.BlockDevice
	var members []*disk.Disk
	if *parity > 0 {
		members = make([]*disk.Disk, *parity)
		for i := range members {
			members[i] = disk.New(eng, fmt.Sprintf("sd%d", i), g, p)
		}
		vol, err := disk.NewParityVolume("vol0", members, *stripe)
		if err != nil {
			log.Fatalf("parity volume: %v", err)
		}
		dev = vol
	} else {
		dev = disk.New(eng, "sd0", g, p)
	}

	opts := ufs.Options{}
	if *fragment {
		opts = ufs.Options{MaxContig: 2, RotDelay: 4}
	}
	if _, err := ufs.Format(dev, opts); err != nil {
		log.Fatalf("format: %v", err)
	}

	dur := time.Duration(*seconds) * time.Second
	var setupErr error
	eng.Spawn("mkcmfs", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, dev, opts)
		if err != nil {
			setupErr = err
			return
		}
		for i := 0; i < *nMovies; i++ {
			path := fmt.Sprintf("/m%02d", i)
			if *container {
				c := &media.Container{
					Name: path,
					Tracks: []media.Track{
						{Kind: "video", Info: media.MPEG1().Generate("v", dur)},
						{Kind: "audio", Info: media.CBRProfile{FrameRate: 30, Rate: 176400}.Generate("a", dur)},
					},
				}
				tracks, err := media.StoreContainer(pr, fs, path, c)
				if err != nil {
					setupErr = err
					return
				}
				fmt.Printf("%s  container: %d tracks, %8d bytes\n",
					path, len(tracks), tracks[len(tracks)-1].TotalSize())
				continue
			}
			var info *media.StreamInfo
			switch *rate {
			case "mpeg1":
				info = media.MPEG1().Generate(path, dur)
			case "mpeg2":
				info = media.MPEG2().Generate(path, dur)
			case "vbr":
				info = media.VBRProfile{FrameRate: 30, MeanRate: 187500, Jitter: 0.25}.
					Generate(path, dur, eng.RNG(path))
			default:
				setupErr = fmt.Errorf("unknown rate %q", *rate)
				return
			}
			if err := media.Store(pr, fs, path, info); err != nil {
				setupErr = err
				return
			}
			f, err := fs.Open(pr, path)
			if err != nil {
				setupErr = err
				return
			}
			bm, err := f.BlockMap(pr)
			if err != nil {
				setupErr = err
				return
			}
			ext, err := core.BuildExtentMap(bm, f.Size(pr), 256<<10)
			if err != nil {
				setupErr = err
				return
			}
			fmt.Printf("%s  %8d bytes  %4d chunks  %3d extents  avg run %d KB\n",
				path, info.TotalSize(), len(info.Chunks), len(ext.Extents), ext.AverageRunBytes()/1024)
		}
		fs.Sync(pr)
	})
	eng.Run()
	if setupErr != nil {
		log.Fatal(setupErr)
	}

	if *parity > 0 {
		// One image per member; cmfsck -parity reassembles and verifies them.
		var total int64
		for i, m := range members {
			path := fmt.Sprintf("%s.%d", *out, i)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.SaveImage(f); err != nil {
				log.Fatalf("save image %s: %v", path, err)
			}
			st, _ := f.Stat()
			total += st.Size()
			f.Close()
		}
		fmt.Printf("wrote %s.0..%d (%d movies, images %d KB, volume %d MB usable)\n",
			*out, *parity-1, *nMovies, total/1024, dev.Geometry().Capacity()>>20)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := dev.(*disk.Disk).SaveImage(f); err != nil {
		log.Fatalf("save image: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %s (%d movies, image %d KB, volume %d MB)\n",
		*out, *nMovies, st.Size()/1024, dev.Geometry().Capacity()>>20)
}
