package cras_test

import (
	"fmt"
	"time"

	cras "repro"
)

// The shortest complete program: boot a machine with one movie and play it
// through CRAS at its natural rate.
func Example() {
	movie := cras.MPEG1().Generate("/clip", 2*time.Second)
	var stats cras.PlayerStats
	m := cras.BuildLab(cras.LabSetup{
		Seed:          1,
		DiskCylinders: 600,
		Movies:        []cras.LabMovie{{Path: "/clip", Info: movie}},
	}, func(m *cras.Lab) {
		cras.CRASPlayer(m.Kernel, m.CRAS, movie, "/clip",
			cras.OpenOptions{}, cras.PlayerConfig{}, &stats)
	})
	m.Run(6 * time.Second)
	fmt.Printf("%d/%d frames on time\n", stats.Obtained, stats.Frames)
	// Output: 60/60 frames on time
}

// The session interface of Table 2: open a stream, start its logical
// clock, fetch a chunk from the shared buffer with no server round trip.
func ExampleHandle() {
	movie := cras.MPEG1().Generate("/clip", 5*time.Second)
	m := cras.BuildLab(cras.LabSetup{
		Seed:          2,
		DiskCylinders: 600,
		Movies:        []cras.LabMovie{{Path: "/clip", Info: movie}},
	}, func(m *cras.Lab) {
		m.App("app", cras.PrioRTLow, 0, func(th *cras.Thread) {
			h, err := m.CRAS.Open(th, movie, "/clip", cras.OpenOptions{}) // crs_open
			if err != nil {
				fmt.Println("open:", err)
				return
			}
			h.Start(th)                                          // crs_start
			th.Sleep(m.CRAS.Config().InitialDelay + time.Second) // let the pipeline fill
			if chunk, ok := h.Get(h.LogicalNow()); ok {          // crs_get
				fmt.Printf("a %d-byte chunk is current\n", chunk.Size)
			}
			h.Close(th) // crs_close
		})
	})
	m.Run(5 * time.Second)
	// Output: a 6250-byte chunk is current
}

// Capacity planning with the admission test, offline — no simulation run
// needed: how many MPEG1 streams does the paper's disk admit at T = 0.5 s?
func ExampleAdmissionParams() {
	eng := cras.NewEngine(1)
	geo, par := cras.ST32550N()
	d := cras.NewDisk(eng, "sd0", geo, par)
	params := cras.MeasureAdmissionParams(d, 64<<10)
	mpeg1 := cras.StreamParams{Rate: 1.5e6 / 8, Chunk: 6250}
	fmt.Println(params.MaxStreams(500*time.Millisecond, 1<<30, mpeg1))
	// Output: 14
}
