// Package cras is the public surface of this repository: a reproduction of
// "Simple Continuous Media Storage Server on Real-Time Mach" (Tezuka &
// Nakajima, USENIX 1996).
//
// It re-exports, under one import path, everything a user needs to build
// and drive a simulated continuous-media machine:
//
//   - the CRAS server itself (Server, Handle, Config, the admission test),
//   - the substrates it runs on: the deterministic simulation engine, the
//     Real-Time Mach scheduling model, the ST32550N-class disk, and the
//     FFS-like Unix file system whose layout CRAS shares,
//   - media stream modeling (chunk tables, CBR/VBR profiles, control
//     files) and the workload actors used in the paper's evaluation,
//   - the Lab assembly helper that boots a complete machine.
//
// See the runnable programs in examples/ for end-to-end usage, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package cras
