package cras

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/nps"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/workload"
)

// ---- simulation engine ----

// Engine is the deterministic discrete-event simulation engine every
// component runs on; Time is a point in virtual time.
type (
	Engine = sim.Engine
	Time   = sim.Time
	Proc   = sim.Proc
)

// NewEngine returns an engine at virtual time zero with the given seed.
var NewEngine = sim.NewEngine

// ---- Real-Time Mach scheduling model ----

// Kernel is a simulated machine's CPU scheduler and kernel-object space;
// Thread is a schedulable thread; Port is a Mach-style message queue.
type (
	Kernel         = rtm.Kernel
	Thread         = rtm.Thread
	Port           = rtm.Port
	Mutex          = rtm.Mutex
	PeriodicConfig = rtm.PeriodicConfig
)

// NewKernel creates a kernel on an engine.
var NewKernel = rtm.NewKernel

// Priority bands, mirroring the conventional interrupt/real-time/
// timesharing split.
const (
	PrioIdle      = rtm.PrioIdle
	PrioTS        = rtm.PrioTS
	PrioRTLow     = rtm.PrioRTLow
	PrioRT        = rtm.PrioRT
	PrioInterrupt = rtm.PrioInterrupt
)

// ---- disk model ----

// Disk is the ST32550N-class disk model with its dual real-time/normal
// C-SCAN controller.
type (
	Disk         = disk.Disk
	DiskGeometry = disk.Geometry
	DiskParams   = disk.Params
	DiskRequest  = disk.Request
	// Volume stripes a logical LBA space over several member disks
	// (RAID-0); StripeFrag is one member's share of a logical range.
	Volume     = disk.Volume
	StripeFrag = disk.Frag
)

var (
	// NewDisk creates a disk on an engine.
	NewDisk = disk.New
	// ST32550N returns geometry and timing calibrated to the paper's disk.
	ST32550N = disk.ST32550N
	// MediaRate returns a disk's sustained transfer rate in bytes/second.
	MediaRate = disk.MediaRate
	// LoadDiskImage reconstructs a disk from an image written by SaveImage.
	LoadDiskImage = disk.LoadImage
	// NewVolume stripes member disks into one logical device; SingleVolume
	// wraps one disk as the identity volume. NewParityVolume adds a
	// rotating parity unit per stripe row (RAID-5 style, N>=3), surviving
	// the death of any one member.
	NewVolume       = disk.NewVolume
	SingleVolume    = disk.SingleVolume
	NewParityVolume = disk.NewParityVolume
)

// DiskStats is one disk's (or one volume member's) activity counters, as
// returned by Disk.Stats and Volume.MemberStats.
type DiskStats = disk.Stats

// ---- Unix file system ----

// FileSystem is the FFS-like file system whose on-disk layout CRAS shares;
// UnixServer is the single-threaded server that applications (and CRAS's
// open path) access it through.
type (
	FileSystem = ufs.FileSystem
	File       = ufs.File
	FSOptions  = ufs.Options
	UnixServer = ufs.Server
	UnixClient = ufs.Client
)

var (
	// FormatFS writes a fresh file system onto a disk (offline mkfs).
	FormatFS = ufs.Format
	// MountFS mounts a formatted disk.
	MountFS = ufs.Mount
	// NewUnixServer starts the Unix server thread.
	NewUnixServer = ufs.NewServer
	// NewUnixClient binds a calling thread to a Unix server.
	NewUnixClient = ufs.NewClient
)

// ---- media streams ----

// StreamInfo is a stream's chunk table; profiles generate CBR and VBR
// streams matching the paper's workloads.
type (
	StreamInfo = media.StreamInfo
	Chunk      = media.Chunk
	CBRProfile = media.CBRProfile
	VBRProfile = media.VBRProfile
	// Container is a QuickTime-style movie: one file, several tracks.
	Container = media.Container
	Track     = media.Track
)

var (
	// MPEG1 is the paper's 1.5 Mb/s benchmark profile; MPEG2 its 6 Mb/s one.
	MPEG1 = media.MPEG1
	MPEG2 = media.MPEG2
	// StoreMovie lays a movie and its control track out on a file system.
	StoreMovie = media.Store
	// LoadMovie reads a chunk table back through the Unix server.
	LoadMovie = media.Load
	// EncodeControl and DecodeControl serialize chunk tables in the
	// control-file format, for applications that write their own media.
	EncodeControl = media.EncodeControl
	DecodeControl = media.DecodeControl
	// StoreContainer and LoadContainer handle QuickTime-style multi-track
	// movie files.
	StoreContainer = media.StoreContainer
	LoadContainer  = media.LoadContainer
)

// ---- the CRAS server ----

// Server is the constant rate access server — the paper's contribution.
// Handle is an application's session (crs_open..crs_get).
type (
	Server          = core.Server
	Handle          = core.Handle
	Config          = core.Config
	OpenOptions     = core.OpenOptions
	AdmissionParams = core.AdmissionParams
	StreamParams    = core.StreamParams
	AdmissionError  = core.AdmissionError
	BufferedChunk   = core.BufferedChunk
	TDBuffer        = core.TDBuffer
	LogicalClock    = core.LogicalClock
	ExtentMap       = core.ExtentMap
	ServerStats     = core.Stats
	AccuracyRecord  = core.AccuracyRecord
	// VolumeShape describes a volume to the admission test (member count,
	// parity, dead members); MemberHealth and MemberHealthEvent expose the
	// per-member ladder of a parity volume.
	VolumeShape       = core.VolumeShape
	MemberHealth      = core.MemberHealth
	MemberHealthEvent = core.MemberHealthEvent
)

// Member ladder positions (parity volumes).
const (
	MemberHealthy    = core.MemberHealthy
	MemberSuspect    = core.MemberSuspect
	MemberDead       = core.MemberDead
	MemberRebuilding = core.MemberRebuilding
)

var (
	// NewServer starts CRAS on a kernel; NewVolumeServer starts it on a
	// striped multi-disk volume.
	NewServer       = core.NewServer
	NewVolumeServer = core.NewVolumeServer
	// MeasureAdmissionParams calibrates the admission test from a disk.
	MeasureAdmissionParams = core.MeasureAdmissionParams
	// StripedParams converts a stream's admission parameters to their
	// per-member form for a striped volume (AdmissionParams.AdmitVolume);
	// VolumeParams is its shape-aware generalization covering parity.
	StripedParams = core.StripedParams
	VolumeParams  = core.VolumeParams
	// NewTDBuffer creates a standalone time-driven shared memory buffer.
	NewTDBuffer = core.NewTDBuffer
	// NewLogicalClock returns a stopped logical clock at zero.
	NewLogicalClock = core.NewLogicalClock
	// BuildExtentMap converts a UFS block map into capped read extents.
	BuildExtentMap = core.BuildExtentMap
)

// ---- lab assembly and workloads ----

// Lab assembles a complete machine (disk, file system, Unix server, CRAS)
// and is the quickest way to get something running; see examples/.
type (
	Lab          = lab.Machine
	LabSetup     = lab.Setup
	LabMovie     = lab.Movie
	PlayerStats  = workload.PlayerStats
	PlayerConfig = workload.PlayerConfig
)

var (
	// BuildLab boots a machine and calls ready from engine context.
	BuildLab = lab.Build
	// Players and background actors from the paper's evaluation.
	CRASPlayer       = workload.CRASPlayer
	UFSPlayer        = workload.UFSPlayer
	BackgroundReader = workload.BackgroundReader
	RawScanner       = workload.RawScanner
	CPUHog           = workload.CPUHog
)

// ---- sharded cluster ----

// Cluster is the front door over N complete CRAS nodes: popularity-aware
// placement and consistent-hash routing with cluster-wide admission, a
// Healthy→Suspect→Dead node ladder, stamp-point failover, and zero-loss
// drain migration. ClusterSession is a viewer's cluster-level session,
// surviving node death and drain behind a stable handle.
type (
	Cluster         = cluster.Cluster
	ClusterConfig   = cluster.Config
	ClusterSession  = cluster.Session
	ClusterStats    = cluster.Stats
	NodeHealth      = cluster.NodeHealth
	NodeHealthEvent = cluster.NodeHealthEvent
	FailoverError   = cluster.FailoverError
)

// Node ladder positions.
const (
	NodeHealthy = cluster.NodeHealthy
	NodeSuspect = cluster.NodeSuspect
	NodeDead    = cluster.NodeDead
)

var (
	// NewCluster boots N nodes on one shared engine and calls ready from
	// engine context once routing and health monitoring are armed.
	NewCluster = cluster.New
	// ErrFailover is the sentinel every *FailoverError unwraps to.
	ErrFailover = cluster.ErrFailover
)

// ---- NPS network engine ----

// Network is a shared link with rate-reserved channels (the paper's NPS,
// used by QtPlay to ship streams between machines in Figure 11).
type (
	Network       = nps.Network
	NetworkConfig = nps.Config
	NetChannel    = nps.Channel
	NetPacket     = nps.Packet
)

// NewNetwork creates a link (defaults model 10 Mb/s Ethernet).
var NewNetwork = nps.New

// ---- measurement ----

// Series and Summary are the measurement primitives used by the harness.
type (
	Series  = metrics.Series
	Summary = metrics.Summary
)

// Summarize computes a distribution summary of sample values.
var Summarize = metrics.Summarize
