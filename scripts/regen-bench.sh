#!/bin/sh
# Regenerates the checked-in evaluation output. CI re-runs this and diffs,
# so crasbench_output.txt can never drift from what the code produces.
# Quick mode keeps the fixed-seed sweep small enough for a PR gate; run
# `go run ./cmd/crasbench -all` by hand for the full-size tables.
set -e
cd "$(dirname "$0")/.."
# -json snapshots the rotating-parity capacity sweep, -mcastjson the
# multicast batching sweep, -clusterjson the sharded-cluster scaling sweep
# and -vcrjson the VCR admission sweep (all part of -all) into
# BENCH_parity.json, BENCH_multicast.json, BENCH_cluster.json and
# BENCH_vcr.json: pure simulation, deterministic at the fixed seed, so CI
# diffs them alongside crasbench_output.txt.
go run ./cmd/crasbench -all -quick -seed 1 \
	-json BENCH_parity.json -mcastjson BENCH_multicast.json \
	-clusterjson BENCH_cluster.json -vcrjson BENCH_vcr.json > crasbench_output.txt
echo "regenerated crasbench_output.txt, BENCH_parity.json, BENCH_multicast.json, BENCH_cluster.json and BENCH_vcr.json" >&2

# Engine-cycle cost snapshot: ns/cycle and allocs/cycle for the scheduler
# hot path, the burn-down meter for crasvet.baseline.json. Wall times are
# machine-dependent, so CI uploads this file but never diffs it.
go test -run '^$' -bench '^BenchmarkEngineCycle$' -benchtime 1x -benchmem . |
	awk '/^BenchmarkEngineCycle/ {
		printf "{\n  \"benchmark\": \"BenchmarkEngineCycle\",\n  \"metrics\": {"
		sep = ""
		for (i = 3; i < NF; i += 2) {
			printf "%s\n    \"%s\": %s", sep, $(i+1), $i
			sep = ","
		}
		print "\n  }\n}"
	}' > BENCH_engine.json
echo "regenerated BENCH_engine.json" >&2
