#!/bin/sh
# Regenerates the checked-in evaluation output. CI re-runs this and diffs,
# so crasbench_output.txt can never drift from what the code produces.
# Quick mode keeps the fixed-seed sweep small enough for a PR gate; run
# `go run ./cmd/crasbench -all` by hand for the full-size tables.
set -e
cd "$(dirname "$0")/.."
go run ./cmd/crasbench -all -quick -seed 1 > crasbench_output.txt
echo "regenerated crasbench_output.txt" >&2
